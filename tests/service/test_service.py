"""Tests for the batched multi-run query service."""

import json

import pytest

from repro.core.engine import ProvenanceQueryEngine
from repro.datasets.paper_example import paper_specification
from repro.service import (
    BatchFormatError,
    IndexCache,
    QueryRequest,
    QueryService,
    read_requests_jsonl,
    request_from_dict,
    request_to_dict,
    result_to_dict,
)
from repro.workflow.derivation import derive_run
from repro.workflow.serialization import save_run


@pytest.fixture(scope="module")
def spec():
    return paper_specification()


@pytest.fixture(scope="module")
def run(spec):
    return derive_run(spec, seed=0, target_edges=40)


@pytest.fixture
def service(run):
    service = QueryService(max_workers=4)
    service.register_run(run, "r1")
    return service


class TestRegistration:
    def test_register_and_lookup(self, run):
        service = QueryService()
        assert service.register_run(run) == "run-1"
        assert service.run_ids() == ("run-1",)
        assert service.get_run("run-1") is run

    def test_duplicate_id_with_different_run_rejected(self, spec, run):
        service = QueryService()
        service.register_run(run, "r")
        other = derive_run(spec, seed=9, target_edges=40)
        with pytest.raises(ValueError, match="already registered"):
            service.register_run(other, "r")

    def test_reregistering_same_run_is_idempotent(self, run):
        # Replaying registrations against a persistent registry (or a CLI
        # passing --run for a run the store already holds) must be a no-op.
        service = QueryService()
        service.register_run(run, "r")
        assert service.register_run(run, "r") == "r"
        assert service.run_ids() == ("r",)

    def test_unknown_run_id(self, service):
        with pytest.raises(KeyError):
            service.get_run("nope")

    def test_load_run_file_defaults_to_stem(self, run, tmp_path):
        path = tmp_path / "myrun.json"
        save_run(run, path)
        service = QueryService()
        assert service.load_run_file(path) == "myrun"
        assert service.get_run("myrun").node_count == run.node_count

    def test_runs_of_same_grammar_share_one_engine(self, spec, run, tmp_path):
        path = tmp_path / "copy.json"
        save_run(run, path)
        service = QueryService()
        service.register_run(run, "a")
        service.load_run_file(path, run_id="b")
        assert service.engine_for("a") is service.engine_for("b")

    def test_renamed_grammar_still_served_by_shared_engine(self, spec, run):
        """Engines are shared by grammar *content*; the display name of a
        run's specification must not matter (regression test)."""
        from repro.workflow.serialization import run_to_dict, run_from_dict

        payload = run_to_dict(run)
        payload["specification"]["name"] = "renamed"
        renamed_run = run_from_dict(payload)
        service = QueryService()
        service.register_run(run, "original")
        service.register_run(renamed_run, "renamed")
        assert service.engine_for("original") is service.engine_for("renamed")
        source = renamed_run.node_ids()[0]
        result = service.execute(
            {"op": "reachability", "run": "renamed", "source": source, "target": source}
        )
        assert result.ok
        assert result.answer is True


class TestBatchEvaluation:
    def test_results_match_direct_engine(self, spec, run, service):
        engine = ProvenanceQueryEngine(spec)
        source = run.nodes_named("c")[0]
        target = run.nodes_named("b")[0]
        requests = [
            {"op": "pairwise", "run": "r1", "query": "_* e _*",
             "source": source, "target": target},
            {"op": "reachability", "run": "r1", "source": source, "target": target},
            {"op": "allpairs", "run": "r1", "query": "A+", "id": "all"},
        ]
        results = service.run_batch(requests)
        assert [result.ok for result in results] == [True, True, True]
        assert results[0].answer == engine.pairwise(run, source, target, "_* e _*")
        assert results[1].answer == engine.reachable(run, source, target)
        assert set(results[2].pairs) == engine.evaluate(run, "A+")

    def test_unsafe_pairwise_falls_back_to_decomposition(self, spec, run, service):
        engine = ProvenanceQueryEngine(spec)
        pairs = engine.evaluate(run, "e")
        assert pairs  # the run realizes at least one 'e' edge
        source, target = sorted(pairs)[0]
        [result] = service.run_batch(
            [{"op": "pairwise", "run": "r1", "query": "e",
              "source": source, "target": target}]
        )
        assert result.ok
        assert result.answer is True

    def test_results_keep_request_order_and_ids(self, run, service):
        source = run.node_ids()[0]
        requests = [
            QueryRequest(op="reachability", run="r1", source=source, target=target,
                         request_id=f"req-{position}")
            for position, target in enumerate(run.node_ids()[:10])
        ]
        results = service.run_batch(requests)
        assert [result.request_id for result in results] == [
            f"req-{position}" for position in range(10)
        ]

    def test_failures_become_error_results(self, run, service):
        source = run.node_ids()[0]
        requests = [
            {"op": "pairwise", "run": "missing", "query": "_*",
             "source": source, "target": source},
            {"op": "pairwise", "run": "r1", "query": "((broken",
             "source": source, "target": source},
            {"op": "reachability", "run": "r1", "source": "no-such-node",
             "target": source},
            {"op": "reachability", "run": "r1", "source": source, "target": source},
        ]
        results = service.run_batch(requests)
        assert [result.ok for result in results] == [False, False, False, True]
        assert "unknown run id" in results[0].error
        assert "broken" in results[1].error
        assert results[3].answer is True

    def test_empty_batch(self, service):
        assert service.run_batch([]) == []

    def test_execute_single_request(self, run, service):
        source = run.node_ids()[0]
        result = service.execute(
            {"op": "reachability", "run": "r1", "source": source, "target": source}
        )
        assert result.ok
        assert result.answer is True

    def test_stream_pairs_matches_execute(self, run, service):
        request = {"op": "allpairs", "run": "r1", "query": "A+"}
        streamed = list(service.stream_pairs(request))
        assert len(streamed) == len(set(streamed))
        result = service.execute(request)
        assert result.ok
        assert set(streamed) == set(result.pairs)

    def test_stream_pairs_handles_unsafe_queries(self, run, service):
        request = {"op": "allpairs", "run": "r1", "query": "_* a _*"}
        result = service.execute(request)
        assert set(service.stream_pairs(request)) == set(result.pairs)

    def test_stream_pairs_rejects_other_ops(self, run, service):
        source = run.node_ids()[0]
        with pytest.raises(BatchFormatError):
            service.stream_pairs(
                {"op": "reachability", "run": "r1", "source": source, "target": source}
            )

    def test_stream_pairs_unknown_run_raises_eagerly(self, service):
        with pytest.raises(KeyError):
            service.stream_pairs({"op": "allpairs", "run": "nope", "query": "A+"})

    def test_warm_prebuilds_indexes(self, service):
        report = service.warm("r1", ["_* e _*", "A+"])
        assert report == {"_* e _*": "safe", "A+": "safe"}
        stats = service.cache_stats
        assert stats.index_builds == 2
        service.warm("r1", ["(_* e _*)", "A+"])
        assert service.cache_stats.index_builds == 2

    def test_warm_unsafe_query_caches_plan_and_subqueries(self, service):
        report = service.warm("r1", ["(A)+ . e"])
        assert report["(A)+ . e"].startswith("unsafe: plan cached")
        assert service.cache_stats.plan_builds == 1
        # The plan and its safe subquery index are hot: evaluating the query
        # neither re-plans nor rebuilds indexes.
        builds = service.cache_stats.index_builds
        result = service.execute({"op": "allpairs", "run": "r1", "query": "(A)+ . e"})
        assert result.ok
        assert service.cache_stats.plan_builds == 1
        assert service.cache_stats.index_builds == builds

    def test_warm_reports_bad_queries_instead_of_swallowing(self, service):
        report = service.warm("r1", ["_* e _*", "((("])
        assert report["_* e _*"] == "safe"
        assert report["((("].startswith("error: ")
        # A typo'd query is reported, not silently ignored.
        assert "(((" in report

    def test_describe(self, service):
        text = service.describe()
        assert '1 runs' in text
        assert 'CacheStats' in text


class TestCacheEffectiveness:
    def test_warm_batch_beats_bare_engines_by_5x(self, spec, run):
        """The acceptance criterion: a repeated-query batch through a warm
        service costs >= 5x fewer index builds than bare per-request engines."""
        source = run.nodes_named("c")[0]
        target = run.nodes_named("b")[0]
        # 30 requests cycling through equivalent spellings of two queries.
        spellings = ["_* e _*", "(_* e _*)", "_*  e  _*", "A+", "(A)+", "A+ | A+"]
        requests = [
            QueryRequest(op="pairwise", run="r1", query=spellings[position % 6],
                         source=source, target=target)
            for position in range(30)
        ]

        # The pre-service behaviour: one fresh engine per request.
        bare_builds = 0
        for request in requests:
            engine = ProvenanceQueryEngine(spec)
            engine.pairwise(run, request.source, request.target, request.query)
            bare_builds += engine.cache.stats.index_builds
        assert bare_builds == 30

        service = QueryService(cache=IndexCache(max_entries=64), max_workers=4)
        service.register_run(run, "r1")
        service.run_batch(requests)  # cold pass warms the cache
        warm_start = service.cache_stats.index_builds
        results = service.run_batch(requests)  # the measured warm batch
        warm_builds = service.cache_stats.index_builds - warm_start

        assert all(result.ok for result in results)
        assert warm_builds == 0
        # Even counting the cold pass, the whole double batch built 5x fewer
        # indexes than bare engines needed for a single pass.
        assert service.cache_stats.index_builds * 5 <= bare_builds

    def test_batch_deduplicates_builds_even_when_cold(self, run):
        service = QueryService(max_workers=4)
        service.register_run(run, "r1")
        source = run.nodes_named("c")[0]
        target = run.nodes_named("b")[0]
        requests = [
            {"op": "pairwise", "run": "r1", "query": query,
             "source": source, "target": target}
            for query in ["_* e _*", "(_* e _*)", "_*  e  _*"] * 5
        ]
        results = service.run_batch(requests)
        assert all(result.ok for result in results)
        assert service.cache_stats.index_builds == 1


class TestWarmRestart:
    """The acceptance scenario of the persistent store: a restarted service
    answers its first previously-seen query with zero index/plan rebuilds."""

    QUERIES = ["_* e _*", "A+", "_* a _*"]  # two safe, one unsafe

    def _requests(self, run):
        return [
            {"op": "allpairs", "run": "r1", "query": query, "id": f"q{position}"}
            for position, query in enumerate(self.QUERIES)
        ]

    def test_restarted_service_rebuilds_nothing(self, run, tmp_path):
        first = QueryService(store_dir=tmp_path, max_workers=2)
        first.register_run(run, "r1")
        statuses = first.warm("r1", self.QUERIES)
        assert all(not status.startswith("error") for status in statuses.values())
        reference = [result_to_dict(r) for r in first.run_batch(self._requests(run))]

        restarted = QueryService(store_dir=tmp_path, max_workers=2)
        assert restarted.run_ids() == ("r1",)  # registry restored, labels kept
        results = [result_to_dict(r) for r in restarted.run_batch(self._requests(run))]
        stats = restarted.cache_stats
        assert stats.index_builds == 0
        assert stats.safety_checks == 0
        assert stats.plan_builds == 0
        assert stats.store_hits > 0

        def stable(records):
            return [
                {key: value for key, value in record.items() if key != "elapsed_ms"}
                for record in records
            ]

        assert stable(results) == stable(reference)

    def test_explicit_cache_gets_the_store_attached(self, run, tmp_path):
        cache = IndexCache(max_entries=32)
        service = QueryService(cache=cache, store_dir=tmp_path)
        assert cache.store is service.store is not None
        service.register_run(run, "r1")
        service.warm("r1", ["_* e _*"])
        assert service.cache_stats.store_writes > 0

    def test_conflicting_cache_and_service_stores_rejected(self, tmp_path):
        # Splitting the run registry and the index entries across two stores
        # would silently break the warm-restart contract.
        from repro.store import IndexStore

        cache = IndexCache(store=IndexStore(tmp_path / "a"))
        with pytest.raises(ValueError, match="different store attached"):
            QueryService(cache=cache, store_dir=tmp_path / "b")

    def test_same_directory_store_is_accepted(self, tmp_path):
        # A second IndexStore instance for the same directory is consistent
        # configuration; the cache's original instance stays canonical.
        from repro.store import IndexStore

        cache = IndexCache(store=IndexStore(tmp_path))
        service = QueryService(cache=cache, store_dir=tmp_path)
        assert service.store is cache.store

    def test_service_adopts_the_caches_store(self, run, tmp_path):
        from repro.store import IndexStore

        cache = IndexCache(store=IndexStore(tmp_path))
        service = QueryService(cache=cache)  # no store_dir
        assert service.store is cache.store
        service.register_run(run, "r1")  # registry lands in the same store
        assert QueryService(store_dir=tmp_path).run_ids() == ("r1",)

    def test_store_runs_register_before_new_ones(self, spec, run, tmp_path):
        QueryService(store_dir=tmp_path).register_run(run, "persisted")
        service = QueryService(store_dir=tmp_path)
        other = derive_run(spec, seed=3, target_edges=30)
        service.register_run(other)  # auto id must not collide
        assert set(service.run_ids()) == {"persisted", "run-2"}


class TestWireFormat:
    def test_request_round_trip(self):
        request = QueryRequest(
            op="allpairs", run="r1", query="A+", sources=("x",), targets=("y", "z"),
            use_reachability_filter=False, request_id="q9",
        )
        assert request_from_dict(request_to_dict(request)) == request

    def test_read_requests_jsonl_skips_blanks_and_comments(self):
        lines = [
            "",
            "# a comment",
            json.dumps({"op": "reachability", "run": "r", "source": "a", "target": "b"}),
        ]
        requests = list(read_requests_jsonl(lines))
        assert len(requests) == 1
        assert requests[0].op == 'reachability'

    @pytest.mark.parametrize(
        "payload",
        [
            {"op": "bogus", "run": "r"},
            {"op": "pairwise", "run": "r"},  # missing query/source/target
            {"op": "allpairs", "run": "r"},  # missing query
            {"op": "reachability", "run": "r", "source": "a"},  # missing target
            {"op": "pairwise"},  # missing run
            {"op": "allpairs", "run": "r", "query": "a", "sources": "not-a-list"},
            {"op": "allpairs", "run": "r", "query": "a", "surprise": 1},
        ],
    )
    def test_malformed_requests_rejected(self, payload):
        with pytest.raises(BatchFormatError):
            request_from_dict(payload)

    def test_malformed_jsonl_line_reports_line_number(self):
        with pytest.raises(BatchFormatError, match="line 2"):
            list(read_requests_jsonl(['{"op": "reachability", "run": "r", "source": "a", "target": "b"}', "{oops"]))

    def test_result_to_dict_shapes(self, run, service):
        source = run.node_ids()[0]
        record = result_to_dict(
            service.execute({"op": "reachability", "run": "r1",
                             "source": source, "target": source})
        )
        assert record['ok'] is True
        assert record['answer'] is True
        assert 'elapsed_ms' in record
        assert 'pairs' not in record
