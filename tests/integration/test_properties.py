"""Property-based end-to-end tests.

Hypothesis generates random (specification, run, query) triples and checks
that the labeling-based engines agree with the product-automaton oracle, and
that core invariants of the labeling substrate hold on arbitrary runs.
"""

import networkx
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.automata.regex import parse_regex
from repro.baselines.product_bfs import product_bfs_all_pairs, product_bfs_pairwise
from repro.core.decomposition import (
    evaluate_general_query,
    evaluate_general_query_iter,
)
from repro.core.engine import ProvenanceQueryEngine
from repro.core.relations import evaluate_regex_relation, restrict
from repro.core.safety import is_safe_query
from repro.datasets.paper_example import paper_specification
from repro.datasets.synthetic import generate_synthetic_specification
from repro.labeling.reachability import is_reachable
from repro.workflow.derivation import derive_run

# A small cache of specifications/runs so hypothesis examples stay fast.
_SPECS = {
    "paper": paper_specification(),
    "synthetic-a": generate_synthetic_specification(120, seed=1),
    "synthetic-b": generate_synthetic_specification(160, seed=2, recursion_fraction=0.5),
}
_RUNS = {
    name: [derive_run(spec, seed=seed, target_edges=70) for seed in (0, 1)]
    for name, spec in _SPECS.items()
}


def _tags(spec):
    return sorted(spec.tags)


@st.composite
def spec_run_query(draw):
    name = draw(st.sampled_from(sorted(_SPECS)))
    spec = _SPECS[name]
    run = draw(st.sampled_from(_RUNS[name]))
    tags = _tags(spec)
    # Build a small random query over the spec's tags.
    def leaf():
        choice = draw(st.integers(0, 3))
        if choice == 0:
            return "_"
        if choice == 1:
            return "_*"
        return draw(st.sampled_from(tags))

    shape = draw(st.integers(0, 4))
    if shape == 0:
        query = leaf()
    elif shape == 1:
        query = f"{leaf()} . {leaf()}"
    elif shape == 2:
        query = f"({leaf()} | {leaf()})"
    elif shape == 3:
        query = f"({draw(st.sampled_from(tags))})*"
    else:
        query = f"{leaf()} . ({leaf()} | {leaf()})* . {leaf()}"
    return spec, run, query


@st.composite
def restricted_spec_run_query(draw):
    """A (spec, run, query, l1, l2) tuple where the node lists exercise the
    restriction-pushdown edge cases: ``None``, empty lists, duplicate ids,
    and lists disjoint from the answer."""
    spec, run, query = draw(spec_run_query())
    nodes = list(run.node_ids())

    def node_list():
        kind = draw(st.integers(0, 4))
        if kind == 0:
            return None
        if kind == 1:
            return []
        count = draw(st.integers(1, 8))
        # Sampling with replacement: duplicates are likely and deliberate.
        return [nodes[draw(st.integers(0, len(nodes) - 1))] for _ in range(count)]

    return spec, run, query, node_list(), node_list()


class TestEngineAgainstOracle:
    @given(spec_run_query())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.data_too_large])
    def test_general_evaluation_matches_oracle(self, data):
        spec, run, query = data
        expected = product_bfs_all_pairs(run, None, None, query)
        assert evaluate_general_query(run, query) == expected

    @given(restricted_spec_run_query())
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.data_too_large])
    def test_restricted_evaluation_matches_naive_restrict(self, data):
        """Every strategy of the restriction-pushdown evaluator — and the
        streaming iterator — must match evaluating the whole run with plain
        G1 joins and restricting afterwards."""
        spec, run, query, l1, l2 = data
        naive = restrict(evaluate_regex_relation(run, parse_regex(query)), l1, l2)
        for strategy in ("auto", "frontier", "join"):
            got = evaluate_general_query(run, query, l1, l2, strategy=strategy)
            assert got == naive, f"{strategy} diverged for {query!r}"
        streamed = list(evaluate_general_query_iter(run, query, l1, l2))
        assert len(streamed) == len(set(streamed))
        assert set(streamed) == naive

    @given(spec_run_query(), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_safe_pairwise_matches_oracle(self, data, pick):
        spec, run, query = data
        if not is_safe_query(spec, query):
            return
        engine = ProvenanceQueryEngine(spec)
        nodes = run.node_ids()
        source = nodes[pick % len(nodes)]
        target = nodes[(pick * 7 + 3) % len(nodes)]
        assert engine.pairwise(run, source, target, query) == product_bfs_pairwise(
            run, source, target, query
        )


class TestLabelingInvariants:
    @given(st.sampled_from(sorted(_SPECS)), st.integers(0, 3))
    @settings(max_examples=12, deadline=None)
    def test_labels_unique_and_decode_matches_graph(self, name, seed):
        spec = _SPECS[name]
        run = derive_run(spec, seed=100 + seed, target_edges=60)
        labels = [node.label for node in run]
        assert len(labels) == len(set(labels))

        graph = networkx.DiGraph()
        graph.add_nodes_from(run.node_ids())
        graph.add_edges_from((edge.source, edge.target) for edge in run.edges)
        nodes = list(run.node_ids())[::3]
        for u in nodes:
            reachable = networkx.descendants(graph, u) | {u}
            for v in nodes:
                assert is_reachable(run.label_of(u), run.label_of(v), spec) == (v in reachable)

    @given(st.sampled_from(sorted(_SPECS)), st.integers(0, 3))
    @settings(max_examples=12, deadline=None)
    def test_label_depth_bounded_by_specification(self, name, seed):
        spec = _SPECS[name]
        run = derive_run(spec, seed=200 + seed, target_edges=80)
        # Compressed parse-tree depth is bounded by the number of modules
        # (each level consumes either a production or a recursion chain).
        bound = 2 * len(spec.modules)
        assert all(len(node.label) <= bound for node in run)


class TestAllPairsConsistency:
    @given(spec_run_query())
    @settings(max_examples=25, deadline=None)
    def test_s1_equals_s2_for_safe_queries(self, data):
        spec, run, query = data
        if not is_safe_query(spec, query):
            return
        engine = ProvenanceQueryEngine(spec)
        l1 = run.node_ids()[::2]
        l2 = run.node_ids()[1::2]
        s2 = engine.all_pairs(run, query, l1, l2)
        s1 = engine.all_pairs(run, query, l1, l2, use_reachability_filter=False)
        assert s1 == s2

    @given(spec_run_query())
    @settings(max_examples=25, deadline=None)
    def test_all_four_evaluation_paths_agree(self, data):
        """Per-pair S1 ≡ per-pair S2 ≡ vectorized S2 ≡ streamed results on
        random specifications, runs and safe queries."""
        spec, run, query = data
        if not is_safe_query(spec, query):
            return
        engine = ProvenanceQueryEngine(spec)
        l1 = run.node_ids()[::2]
        l2 = run.node_ids()[1::2]
        per_pair_s1 = engine.all_pairs(
            run, query, l1, l2, use_reachability_filter=False
        )
        per_pair_s2 = engine.all_pairs(run, query, l1, l2, vectorized=False)
        vectorized = engine.all_pairs(run, query, l1, l2)
        streamed = list(engine.all_pairs_iter(run, query, l1, l2))
        assert len(streamed) == len(set(streamed))
        assert per_pair_s1 == per_pair_s2 == vectorized == set(streamed)

    @given(spec_run_query())
    @settings(max_examples=15, deadline=None)
    def test_evaluate_iter_agrees_with_evaluate(self, data):
        spec, run, query = data
        engine = ProvenanceQueryEngine(spec)
        assert set(engine.evaluate_iter(run, query)) == engine.evaluate(run, query)
