"""The paper's worked examples, end to end.

This module is the executable record of every concrete claim the paper makes
about its running example (Fig. 2, Fig. 7, Examples 2.2, 2.5, 3.1–3.5), so a
regression in any layer of the system shows up as a failed paper fact.
"""

from repro import ProvenanceQueryEngine, paper_specification
from repro.core.safety import analyze_safety, query_dfa
from repro.datasets.paper_example import paper_run
from repro.labeling.labels import ProductionStep as P
from repro.labeling.labels import RecursionStep as R


class TestSection2Model:
    def test_example_22_recursion_structure(self):
        spec = paper_specification()
        graph = spec.production_graph
        assert spec.is_recursive()
        assert graph.is_strictly_linear_recursive
        assert spec.recursive_modules == {"A"}
        assert len(graph.cycles) == 1

    def test_fig5_like_specification_is_rejected(self):
        import pytest

        from repro.errors import RecursionError_
        from repro.workflow.simple import chain
        from repro.workflow.spec import Production, Specification

        # Two cycles sharing S (the synthetic production graph of Fig. 5).
        with pytest.raises(RecursionError_):
            Specification(
                start="S",
                productions=[
                    Production("S", chain(["a", "S", "b"])),
                    Production("S", chain(["c", "S", "c2"])),
                    Production("S", chain(["a", "b"])),
                ],
            )

    def test_fig7_labels(self):
        # ψV(b:2) = (1,3)(4,1) and ψV(a:1) = (1,2)(1,1,1)(2,1) in the paper's
        # 1-based notation.
        run = paper_run()
        assert run.label_of("b:2") == (P(0, 2), P(3, 0))
        assert run.label_of("a:1") == (P(0, 1), R(0, 0, 0), P(1, 0))

    def test_example_25_reachability_between_w1_children(self):
        # "consider node c:1 and b:1 ... we know directly from W'1 the
        # connectivity between c:1 and b:1"
        run = paper_run()
        engine = ProvenanceQueryEngine(run.spec)
        assert engine.reachable(run, "c:1", "b:1")
        assert not engine.reachable(run, "b:1", "c:1")


class TestSection3PairwiseQueries:
    def test_example_32_fine_grained_run(self):
        # R3 = _* e _* holds for (c:1, b:1) but not (c:1, b:3).
        run = paper_run()
        engine = ProvenanceQueryEngine(run.spec)
        assert engine.pairwise(run, "c:1", "b:1", "_* e _*")
        assert not engine.pairwise(run, "c:1", "b:3", "_* e _*")

    def test_example_34_safety_of_r3_and_r4(self):
        engine = ProvenanceQueryEngine(paper_specification())
        assert engine.is_safe("_* e _*")  # R3
        assert not engine.is_safe("e")  # R4

    def test_section_3c_wildcard_a_wildcard_unsafe(self):
        engine = ProvenanceQueryEngine(paper_specification())
        assert not engine.is_safe("_* a _*")
        assert engine.is_safe("_*")

    def test_example_35_lambda_matrices(self):
        # "The execution of composite module B leaves the states unchanged,
        # whereas any execution of composite module A causes a transition from
        # q0 to qf, and from qf to qf."
        spec = paper_specification()
        dfa = query_dfa(spec, "_* e _*")
        report = analyze_safety(spec, dfa)
        accepting = next(iter(dfa.accepting))
        assert report.lambda_of("A").get(dfa.start, accepting)
        assert report.lambda_of("A").get(accepting, accepting)
        assert report.lambda_of("B").get(dfa.start, dfa.start)
        assert report.lambda_of("B").get(accepting, accepting)
        assert not report.lambda_of("B").get(dfa.start, accepting)


class TestSection4AllPairsQueries:
    def test_example_31_all_answers(self):
        run = paper_run()
        engine = ProvenanceQueryEngine(run.spec)
        l1 = ["d:1", "d:2", "e:2"]
        l2 = ["b:1", "b:2"]
        # Pairwise: R1 = A+ true for (d:2, b:1), R2 = A false for it.
        assert engine.pairwise(run, "d:2", "b:1", "A+")
        assert not engine.pairwise(run, "d:2", "b:1", "A")
        # All-pairs results.
        assert engine.all_pairs(run, "A+", l1, l2) == {
            ("d:1", "b:1"),
            ("d:2", "b:1"),
            ("e:2", "b:1"),
        }
        assert engine.all_pairs(run, "A", l1, l2) == {("d:1", "b:1")}

    def test_fig12_style_partial_lists(self):
        # The tree representation restricted to the paper's Fig. 12 lists.
        run = paper_run()
        engine = ProvenanceQueryEngine(run.spec)
        ancestors = ["a:1", "d:1", "b:3"]
        descendants = ["a:1", "d:1", "d:2", "e:1", "b:1"]
        result = engine.all_pairs_reachability(run, ancestors, descendants)
        # a:1 reaches the whole recursion chain and b:1; d:1 reaches b:1 only;
        # b:3 reaches b:1; plus the trivial self-pairs present in both lists.
        assert result == {
            ("a:1", "a:1"),
            ("a:1", "d:1"),
            ("a:1", "d:2"),
            ("a:1", "e:1"),
            ("a:1", "b:1"),
            ("d:1", "d:1"),
            ("d:1", "b:1"),
            ("b:3", "b:1"),
        }

    def test_general_query_decomposition_matches_direct_evaluation(self):
        run = paper_run(recursion_depth=3)
        engine = ProvenanceQueryEngine(run.spec)
        from repro.baselines.product_bfs import product_bfs_all_pairs

        for query in ("_* a _*", "e", "c (a | A)* d"):
            assert engine.evaluate(run, query) == product_bfs_all_pairs(run, None, None, query)
