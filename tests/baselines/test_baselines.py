"""Tests for the prior-work baselines: they must all agree with the oracle
(and therefore with each other and with the labeling engine)."""

import pytest

from repro.baselines.g1_parse_tree_joins import g1_all_pairs, g1_pairwise
from repro.baselines.g2_rare_labels import g2_all_pairs, g2_pairwise
from repro.baselines.g3_label_index import g3_all_pairs, g3_pairwise
from repro.baselines.product_bfs import product_bfs_all_pairs, product_bfs_pairwise
from repro.datasets.index import EdgeTagIndex
from repro.datasets.myexperiment import bioaid_specification
from repro.datasets.paper_example import paper_run
from repro.datasets.runs import generate_run
from repro.errors import UnsupportedQueryError


@pytest.fixture(scope="module")
def run():
    return paper_run(recursion_depth=4)


@pytest.fixture(scope="module")
def index(run):
    return EdgeTagIndex.from_run(run)


QUERIES_FOR_ALL = ["_* e _*", "_* a _*", "_* a _* e _*", "A", "a A"]
IFQ_QUERIES = ["_*", "_* e _*", "_* a _*", "_* a _* A _*", "_* nonexistent _*"]


class TestProductBfs:
    def test_pairwise_known_answers(self, run):
        assert product_bfs_pairwise(run, "c:1", "b:1", "_* e _*")
        assert not product_bfs_pairwise(run, "c:1", "b:3", "_* e _*")

    def test_all_pairs_handles_sublists(self, run):
        result = product_bfs_all_pairs(run, ["c:1"], ["b:1", "b:3"], "_* e _*")
        assert result == {("c:1", "b:1")}

    def test_empty_path_included(self, run):
        result = product_bfs_all_pairs(run, ["c:1"], ["c:1"], "A*")
        assert result == {("c:1", "c:1")}


class TestG1:
    @pytest.mark.parametrize("query", QUERIES_FOR_ALL + ["a*", "(a | A)+"])
    def test_matches_oracle(self, run, query):
        expected = product_bfs_all_pairs(run, None, None, query)
        assert g1_all_pairs(run, None, None, query) == expected

    def test_pairwise(self, run):
        assert g1_pairwise(run, "d:2", "b:1", "A+")
        assert not g1_pairwise(run, "d:2", "b:1", "A")

    def test_restricted_lists(self, run):
        l1, l2 = ["d:1", "d:2"], ["b:1", "b:2"]
        expected = product_bfs_all_pairs(run, l1, l2, "A+")
        assert g1_all_pairs(run, l1, l2, "A+") == expected


class TestG2:
    @pytest.mark.parametrize("query", QUERIES_FOR_ALL)
    def test_matches_oracle(self, run, index, query):
        expected = product_bfs_all_pairs(run, None, None, query)
        assert g2_all_pairs(run, None, None, query, index=index) == expected

    def test_falls_back_without_rare_tag(self, run, index):
        # A bare Kleene star has no concatenation element to split at.
        expected = product_bfs_all_pairs(run, None, None, "a*")
        assert g2_all_pairs(run, None, None, "a*", index=index) == expected

    def test_pairwise(self, run, index):
        assert g2_pairwise(run, "c:1", "b:1", "_* e _*", index=index)
        assert not g2_pairwise(run, "c:1", "b:3", "_* e _*", index=index)

    def test_query_with_absent_tag(self, run, index):
        assert g2_all_pairs(run, None, None, "_* zzz _*", index=index) == set()


class TestG3:
    @pytest.mark.parametrize("query", IFQ_QUERIES)
    def test_matches_oracle(self, run, index, query):
        expected = product_bfs_all_pairs(run, None, None, query)
        assert g3_all_pairs(run, None, None, query, index=index) == expected

    def test_rejects_non_ifq(self, run, index):
        with pytest.raises(UnsupportedQueryError):
            g3_all_pairs(run, None, None, "a*", index=index)

    def test_pairwise(self, run, index):
        assert g3_pairwise(run, "c:1", "b:1", "_* e _*", index=index)
        assert not g3_pairwise(run, "c:1", "b:3", "_* e _*", index=index)

    def test_restricted_lists(self, run, index):
        l1 = ["d:1", "d:2", "e:2"]
        l2 = ["b:1", "b:2"]
        expected = product_bfs_all_pairs(run, l1, l2, "_* e _*")
        assert g3_all_pairs(run, l1, l2, "_* e _*", index=index) == expected


class TestOnBioAid:
    def test_all_engines_agree_on_a_realistic_run(self):
        spec = bioaid_specification()
        run = generate_run(spec, 150, seed=6)
        index = EdgeTagIndex.from_run(run)
        l1 = run.node_ids()[::6]
        l2 = run.node_ids()[::7]
        query = "_* f1_join _*"
        expected = product_bfs_all_pairs(run, l1, l2, query)
        assert g1_all_pairs(run, l1, l2, query) == expected
        assert g2_all_pairs(run, l1, l2, query, index=index) == expected
        assert g3_all_pairs(run, l1, l2, query, index=index) == expected
