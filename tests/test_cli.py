"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestSpecCommand:
    def test_builtin_spec(self, capsys):
        assert main(["spec", "paper-example"]) == 0
        out = capsys.readouterr().out
        assert "start module : S" in out

    def test_spec_export_and_reload(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        assert main(["spec", "bioaid", "--output", str(path)]) == 0
        assert path.exists()
        assert main(["spec", str(path)]) == 0

    def test_synthetic_spec(self, capsys):
        assert main(["spec", "synthetic:150"]) == 0

    def test_unknown_spec(self):
        with pytest.raises(SystemExit):
            main(["spec", "does-not-exist"])


class TestSafetyCommand:
    def test_safe_query(self, capsys):
        assert main(["safety", "paper-example", "_* e _*"]) == 0
        assert "SAFE" in capsys.readouterr().out

    def test_unsafe_query(self, capsys):
        assert main(["safety", "paper-example", "e"]) == 1
        out = capsys.readouterr().out
        assert "UNSAFE" in out and "A" in out


class TestDeriveAndQuery:
    def test_derive_and_query_round_trip(self, tmp_path, capsys):
        run_path = tmp_path / "run.json"
        assert main(["derive", "paper-example", "--edges", "40", "--seed", "3", "--output", str(run_path)]) == 0
        assert run_path.exists()

        assert main(["query", str(run_path), "_*", "--json"]) == 0
        pairs = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert pairs and all(len(pair) == 2 for pair in pairs)

    def test_pairwise_query(self, tmp_path, capsys):
        run_path = tmp_path / "run.json"
        main(["derive", "paper-example", "--edges", "10", "--seed", "0", "--output", str(run_path)])
        capsys.readouterr()
        assert main(["query", str(run_path), "_* e _*", "--source", "c:1", "--target", "b:1"]) == 0
        assert "True" in capsys.readouterr().out

    def test_all_pairs_with_limit(self, tmp_path, capsys):
        run_path = tmp_path / "run.json"
        main(["derive", "paper-example", "--edges", "60", "--seed", "1", "--output", str(run_path)])
        capsys.readouterr()
        assert main(["query", str(run_path), "A+", "--limit", "3"]) == 0
        assert "matching pairs" in capsys.readouterr().out


class TestBenchCommand:
    def test_single_experiment_runs(self, capsys):
        assert main(["bench", "fig13a", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "fig13a" in out and "grammar_size" in out
