"""Tests for the command-line interface."""

import json
import re

import pytest

from repro.cli import main


class TestSpecCommand:
    def test_builtin_spec(self, capsys):
        assert main(["spec", "paper-example"]) == 0
        out = capsys.readouterr().out
        assert "start module : S" in out

    def test_spec_export_and_reload(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        assert main(["spec", "bioaid", "--output", str(path)]) == 0
        assert path.exists()
        assert main(["spec", str(path)]) == 0

    def test_synthetic_spec(self, capsys):
        assert main(["spec", "synthetic:150"]) == 0

    def test_unknown_spec(self):
        with pytest.raises(SystemExit):
            main(["spec", "does-not-exist"])


class TestSafetyCommand:
    def test_safe_query(self, capsys):
        assert main(["safety", "paper-example", "_* e _*"]) == 0
        assert "SAFE" in capsys.readouterr().out

    def test_unsafe_query(self, capsys):
        assert main(["safety", "paper-example", "e"]) == 1
        out = capsys.readouterr().out
        assert 'UNSAFE' in out
        assert 'A' in out


class TestDeriveAndQuery:
    def test_derive_and_query_round_trip(self, tmp_path, capsys):
        run_path = tmp_path / "run.json"
        assert main(["derive", "paper-example", "--edges", "40", "--seed", "3", "--output", str(run_path)]) == 0
        assert run_path.exists()

        assert main(["query", str(run_path), "_*", "--json"]) == 0
        pairs = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert pairs
        assert all((len(pair) == 2 for pair in pairs))

    def test_pairwise_query(self, tmp_path, capsys):
        run_path = tmp_path / "run.json"
        main(["derive", "paper-example", "--edges", "10", "--seed", "0", "--output", str(run_path)])
        capsys.readouterr()
        assert main(["query", str(run_path), "_* e _*", "--source", "c:1", "--target", "b:1"]) == 0
        assert "True" in capsys.readouterr().out

    def test_all_pairs_with_limit(self, tmp_path, capsys):
        run_path = tmp_path / "run.json"
        main(["derive", "paper-example", "--edges", "60", "--seed", "1", "--output", str(run_path)])
        capsys.readouterr()
        assert main(["query", str(run_path), "A+", "--limit", "3"]) == 0
        assert "matching pairs" in capsys.readouterr().out

    def test_lone_source_or_target_is_an_error(self, tmp_path, capsys):
        run_path = tmp_path / "run.json"
        main(["derive", "paper-example", "--edges", "10", "--output", str(run_path)])
        capsys.readouterr()
        for flag in (["--source", "c:1"], ["--target", "b:1"]):
            with pytest.raises(SystemExit) as excinfo:
                main(["query", str(run_path), "_*", *flag])
            assert '--source' in str(excinfo.value)
            assert '--target' in str(excinfo.value)

    def test_stream_matches_materialized_output(self, tmp_path, capsys):
        run_path = tmp_path / "run.json"
        main(["derive", "paper-example", "--edges", "40", "--seed", "3", "--output", str(run_path)])
        capsys.readouterr()
        assert main(["query", str(run_path), "A+", "--json"]) == 0
        expected = json.loads(capsys.readouterr().out.strip())

        assert main(["query", str(run_path), "A+", "--stream", "--json"]) == 0
        captured = capsys.readouterr()
        streamed = [json.loads(line) for line in captured.out.strip().splitlines()]
        assert sorted(streamed) == sorted(expected)
        assert f"{len(streamed)} matching pairs" in captured.err

    def test_stream_plain_text(self, tmp_path, capsys):
        run_path = tmp_path / "run.json"
        main(["derive", "paper-example", "--edges", "40", "--seed", "3", "--output", str(run_path)])
        capsys.readouterr()
        assert main(["query", str(run_path), "A+", "--stream"]) == 0
        out = capsys.readouterr().out.strip()
        assert out
        assert all((' -> ' in line for line in out.splitlines()))

    def test_stream_rejected_for_pairwise(self, tmp_path, capsys):
        run_path = tmp_path / "run.json"
        main(["derive", "paper-example", "--edges", "10", "--output", str(run_path)])
        capsys.readouterr()
        with pytest.raises(SystemExit) as excinfo:
            main(["query", str(run_path), "_*", "--source", "c:1", "--target", "b:1",
                  "--stream"])
        assert "--stream" in str(excinfo.value)


class TestBenchCommand:
    def test_single_experiment_runs(self, capsys):
        """The pre-catalog invocation style still reaches the legacy figures."""
        assert main(["bench", "fig13a", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert 'fig13a' in out
        assert 'grammar_size' in out

    def test_bench_list_prints_the_catalog(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert 'fig13a-overhead-synthetic' in out
        assert 'frontier-backward' in out

    def test_bench_check_static(self, capsys):
        assert main(["bench", "check", "--static", "--quiet"]) == 0
        assert "statically valid" in capsys.readouterr().out

    def test_bench_run_single_scenario_writes_trajectory(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_trajectory.json"
        assert main(["bench", "run", "--scenario", "fig13d-pairwise-qblast",
                     "--scale", "smoke", "--json", str(out_path), "--quiet"]) == 0
        document = json.loads(out_path.read_text())
        assert document["schema"] == "repro-bench-trajectory/1"
        assert [entry["id"] for entry in document["scenarios"]] == ["fig13d-pairwise-qblast"]

    def test_bench_gate_error_is_clean(self, tmp_path, capsys):
        assert main(["bench", "gate", str(tmp_path / "none.json")]) == 2
        err = capsys.readouterr().err
        assert err.startswith('repro bench: error:')
        assert err.count('\n') == 1


class TestVersionFlag:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out


class TestCleanErrors:
    """Library failures exit non-zero with one-line errors, not tracebacks."""

    def test_malformed_regex_in_safety(self, capsys):
        assert main(["safety", "paper-example", "a |"]) == 2
        err = capsys.readouterr().err
        assert err.startswith('repro: error:')
        assert err.count('\n') == 1

    def test_malformed_regex_in_query(self, tmp_path, capsys):
        run_path = tmp_path / "run.json"
        main(["derive", "paper-example", "--edges", "10", "--output", str(run_path)])
        capsys.readouterr()
        assert main(["query", str(run_path), "((b"]) == 2
        err = capsys.readouterr().err
        assert "missing ')'" in err
        assert err.count('\n') == 1

    def test_missing_run_file(self, tmp_path, capsys):
        assert main(["query", str(tmp_path / "none.json"), "a"]) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_corrupt_run_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["query", str(bad), "a"]) == 2
        assert "repro: error:" in capsys.readouterr().err


@pytest.fixture
def run_path(tmp_path, capsys):
    """A small derived run, shared by the batch/store/cache command tests."""
    path = tmp_path / "r1.json"
    main(["derive", "paper-example", "--edges", "40", "--seed", "3",
          "--output", str(path)])
    capsys.readouterr()
    return path


class TestBatchCommand:
    def _write_requests(self, tmp_path, records):
        path = tmp_path / "requests.jsonl"
        path.write_text("\n".join(json.dumps(record) for record in records) + "\n")
        return path

    def test_batch_streams_results_in_order(self, tmp_path, run_path, capsys):
        requests = self._write_requests(
            tmp_path,
            [
                {"op": "allpairs", "run": "r1", "query": "A+", "id": "first"},
                {"op": "allpairs", "run": "r1", "query": "_* e _*", "id": "second"},
            ],
        )
        assert main(["batch", str(requests), "--run", str(run_path)]) == 0
        captured = capsys.readouterr()
        lines = [json.loads(line) for line in captured.out.strip().splitlines()]
        assert [line["id"] for line in lines] == ["first", "second"]
        assert all(line["ok"] for line in lines)
        assert "index builds" in captured.err

    def test_batch_run_id_syntax_and_output_file(self, tmp_path, run_path, capsys):
        requests = self._write_requests(
            tmp_path, [{"op": "allpairs", "run": "mine", "query": "A+"}]
        )
        out_path = tmp_path / "results.jsonl"
        assert main(["batch", str(requests), "--run", f"mine={run_path}",
                     "--output", str(out_path)]) == 0
        [record] = [json.loads(line) for line in out_path.read_text().splitlines()]
        assert record['ok']
        assert record['run'] == 'mine'

    def test_batch_with_failing_request_exits_nonzero(self, tmp_path, run_path, capsys):
        requests = self._write_requests(
            tmp_path,
            [
                {"op": "allpairs", "run": "r1", "query": "A+"},
                {"op": "allpairs", "run": "absent", "query": "A+"},
            ],
        )
        assert main(["batch", str(requests), "--run", str(run_path)]) == 1
        lines = [json.loads(line) for line in capsys.readouterr().out.strip().splitlines()]
        assert [line["ok"] for line in lines] == [True, False]

    def test_batch_stats_json_summary(self, tmp_path, run_path, capsys):
        """--stats-json gives CI a machine-readable cache summary (replacing
        the old practice of grepping the human stderr line)."""
        requests = self._write_requests(
            tmp_path,
            [
                {"op": "allpairs", "run": "r1", "query": "A+"},
                {"op": "allpairs", "run": "r1", "query": "A+"},
            ],
        )
        stats_path = tmp_path / "stats.json"
        assert main(["batch", str(requests), "--run", str(run_path),
                     "--stats-json", str(stats_path)]) == 0
        capsys.readouterr()
        summary = json.loads(stats_path.read_text())
        assert summary['requests'] == 2
        assert summary['ok'] == 2
        assert summary['failed'] == 0
        # the duplicate query hits the cache: builds stay below request count
        assert summary["index_builds"] >= 1
        assert summary["hits"] >= 1
        assert 0.0 <= summary["hit_rate"] <= 1.0

    def test_batch_stats_json_metrics_schema(self, tmp_path, run_path, capsys):
        """The summary's 'metrics' block carries the registry snapshot —
        cache/store counters, spans recorded, service latency — without
        disturbing the flat CacheStats schema asserted above."""
        requests = self._write_requests(
            tmp_path,
            [
                {"op": "allpairs", "run": "r1", "query": "A+"},
                {"op": "allpairs", "run": "r1", "query": "A+"},
            ],
        )
        stats_path = tmp_path / "stats.json"
        store_dir = tmp_path / "store"
        assert main(["batch", str(requests), "--run", str(run_path),
                     "--store", str(store_dir),
                     "--stats-json", str(stats_path)]) == 0
        capsys.readouterr()
        summary = json.loads(stats_path.read_text())
        assert summary["index_builds"] >= 1  # the flat schema is intact
        metrics = summary["metrics"]
        # Registry counters are process-wide and cumulative, so the schema
        # test pins key presence (and minimums), never exact values.
        for key in (
            "repro_cache_hits_total",
            "repro_cache_misses_total",
            "repro_cache_index_builds_total",
            "repro_store_hits_total",
            "repro_store_misses_total",
            "repro_store_writes_total",
            "repro_obs_spans_total",
            "repro_service_request_seconds_count",
            "repro_cache_entries",
            "repro_worker_budget_capacity",
        ):
            assert key in metrics, f"metrics block lost {key}"
        assert metrics["repro_cache_hits_total"] >= 1
        assert metrics["repro_service_request_seconds_count"] >= 2

    def test_batch_malformed_request_is_clean_error(self, tmp_path, run_path, capsys):
        requests = self._write_requests(tmp_path, [{"op": "bogus"}])
        assert main(["batch", str(requests), "--run", str(run_path)]) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_batch_requires_a_run(self, tmp_path):
        requests = self._write_requests(tmp_path, [])
        with pytest.raises(SystemExit):
            main(["batch", str(requests)])

    def test_batch_run_path_containing_equals_sign(self, tmp_path, run_path, capsys):
        """A bare --run path whose file name contains '=' must register under
        its stem, not be split at the '=' (rpartition used to eat it)."""
        odd_path = tmp_path / "scale=big.json"
        odd_path.write_bytes(run_path.read_bytes())
        requests = self._write_requests(
            tmp_path, [{"op": "allpairs", "run": "scale=big", "query": "A+"}]
        )
        assert main(["batch", str(requests), "--run", str(odd_path)]) == 0
        [record] = [json.loads(line) for line in capsys.readouterr().out.strip().splitlines()]
        assert record['ok']
        assert record['run'] == 'scale=big'

    def test_batch_explicit_id_with_equals_in_path(self, tmp_path, run_path, capsys):
        odd_path = tmp_path / "a=b.json"
        odd_path.write_bytes(run_path.read_bytes())
        requests = self._write_requests(
            tmp_path, [{"op": "allpairs", "run": "mine", "query": "A+"}]
        )
        assert main(["batch", str(requests), "--run", f"mine={odd_path}"]) == 0
        [record] = [json.loads(line) for line in capsys.readouterr().out.strip().splitlines()]
        assert record['ok']
        assert record['run'] == 'mine'

    def test_batch_stdin_and_file_parse_identically(
        self, tmp_path, run_path, capsys, monkeypatch
    ):
        """Blank and whitespace-only lines are skipped for both sources, and
        stdin's trailing newlines do not change parsing."""
        body = (
            "\n   \n"
            + json.dumps({"op": "allpairs", "run": "r1", "query": "A+"})
            + "\r\n\t\n# comment\n"
            + json.dumps({"op": "reachability", "run": "r1", "source": "c:1", "target": "b:1"})
            + "\n\n"
        )
        requests = tmp_path / "requests.jsonl"
        requests.write_text(body)
        assert main(["batch", str(requests), "--run", str(run_path)]) == 0
        from_file = [json.loads(line) for line in capsys.readouterr().out.strip().splitlines()]

        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(body))
        assert main(["batch", "-", "--run", str(run_path)]) == 0
        from_stdin = [json.loads(line) for line in capsys.readouterr().out.strip().splitlines()]

        def strip_timing(records):
            return [{k: v for k, v in r.items() if k != "elapsed_ms"} for r in records]

        assert len(from_file) == 2
        assert strip_timing(from_file) == strip_timing(from_stdin)


class TestStoreCommands:
    def test_build_ls_stats_gc(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(["store", "build", str(store), "--spec", "paper-example",
                     "_* e _*", "_* a _*"]) == 0
        out = capsys.readouterr().out
        assert "safe: index stored" in out
        assert "unsafe: safety verdict and plan stored" in out

        assert main(["store", "ls", str(store)]) == 0
        out = capsys.readouterr().out
        # Planning "_* a _*" probed its subtrees through the cache, so their
        # entries were persisted as a side effect too.
        assert "4 entries, 0 runs" in out

        assert main(["store", "stats", str(store)]) == 0
        out = capsys.readouterr().out
        assert "entries       : 4 (3 safe, 1 unsafe, 1 with plans)" in out

        assert main(["store", "gc", str(store), "--max-bytes", "1"]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["store", "ls", str(store)]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_warm_then_batch_restarts_with_zero_builds(
        self, tmp_path, run_path, capsys
    ):
        store = tmp_path / "store"
        assert main(["store", "warm", str(store), "--run", str(run_path),
                     "_* e _*", "_* a _*"]) == 0
        capsys.readouterr()
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            json.dumps({"op": "allpairs", "run": "r1", "query": "_* a _*"}) + "\n"
        )
        # No --run: the store's persisted registry supplies the run.
        assert main(["batch", str(requests), "--store", str(store)]) == 0
        captured = capsys.readouterr()
        assert "0 index builds" in captured.err
        assert json.loads(captured.out.strip())["ok"] is True

    def test_warm_without_runs_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["store", "warm", str(tmp_path / "store"), "_*"])

    def test_inspection_of_missing_store_is_an_error(self, tmp_path):
        # A mistyped path must not silently create an empty store.
        for command in (["ls"], ["stats"], ["gc", "--max-bytes", "1"]):
            with pytest.raises(SystemExit, match="no store directory"):
                main(["store", *command[:1], str(tmp_path / "typo"), *command[1:]])
        assert not (tmp_path / "typo").exists()

    def test_batch_without_any_run_source_is_an_error(self, tmp_path):
        requests = tmp_path / "requests.jsonl"
        requests.write_text("\n")
        with pytest.raises(SystemExit):
            main(["batch", str(requests), "--store", str(tmp_path / "store")])


class TestCacheCommand:
    def test_reports_warmed_service_statistics(self, tmp_path, run_path, capsys):
        assert main(["cache", "--run", str(run_path), "--warm", "_* e _*",
                     "--warm", "_* a _*"]) == 0
        out = capsys.readouterr().out
        assert 'QueryService' in out
        assert 'IndexCache' in out

    def test_json_output_with_store(self, tmp_path, run_path, capsys):
        store = tmp_path / "store"
        assert main(["cache", "--run", str(run_path), "--store", str(store),
                     "--warm", "_* e _*", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["index_builds"] == 1
        assert record["store_writes"] >= 1
        # Second invocation: a fresh process restarts warm from the store.
        assert main(["cache", "--run", str(run_path), "--store", str(store),
                     "--warm", "_* e _*", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["index_builds"] == 0
        assert record["store_hits"] >= 1

    def test_warm_without_runs_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "--warm", "_*"])


class TestDirectionAndWorkersFlags:
    def test_direction_and_workers_match_default_output(self, tmp_path, run_path, capsys):
        base = ["query", str(run_path), "_* a _*", "--json"]
        assert main(base) == 0
        expected = json.loads(capsys.readouterr().out)
        for extra in (
            ["--direction", "forward", "--strategy", "frontier"],
            ["--direction", "backward", "--strategy", "frontier"],
            ["--workers", "2", "--strategy", "frontier"],
        ):
            assert main(base + extra) == 0
            assert json.loads(capsys.readouterr().out) == expected, extra

    def test_stream_accepts_direction(self, tmp_path, run_path, capsys):
        assert main(["query", str(run_path), "_* a _*", "--stream", "--json",
                     "--direction", "backward"]) == 0
        captured = capsys.readouterr()
        lines = [json.loads(line) for line in captured.out.splitlines()]
        assert main(["query", str(run_path), "_* a _*", "--json"]) == 0
        expected = json.loads(capsys.readouterr().out)
        assert sorted(map(tuple, lines)) == sorted(map(tuple, expected))

    def test_invalid_direction_is_rejected(self, tmp_path, run_path):
        with pytest.raises(SystemExit):
            main(["query", str(run_path), "_* a _*", "--direction", "sideways"])


class TestStoreGcOrphans:
    def test_gc_orphans_drops_unregistered_grammars(self, tmp_path, run_path, capsys):
        store = tmp_path / "store"
        # Entries for a grammar with no registered run (build registers none).
        assert main(["store", "build", str(store), "--spec", "qblast", "_* B1 _*"]) == 0
        # Entries + registered run for the paper grammar.
        assert main(["store", "warm", str(store), "--run", str(run_path),
                     "_* e _*"]) == 0
        capsys.readouterr()
        assert main(["store", "gc", str(store), "--orphans"]) == 0
        out = capsys.readouterr().out
        assert "orphans: removed 1 entries" in out
        assert main(["store", "ls", str(store)]) == 0
        out = capsys.readouterr().out
        assert "B1" not in out
        assert "1 entries, 1 runs" in out

    def test_gc_without_mode_is_an_error(self, tmp_path, run_path, capsys):
        store = tmp_path / "store"
        assert main(["store", "build", str(store), "--spec", "paper-example", "_*"]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="--max-bytes"):
            main(["store", "gc", str(store)])

    def test_gc_orphans_composes_with_max_bytes(self, tmp_path, run_path, capsys):
        store = tmp_path / "store"
        assert main(["store", "warm", str(store), "--run", str(run_path),
                     "_* e _*", "_* b _*"]) == 0
        capsys.readouterr()
        assert main(["store", "gc", str(store), "--orphans", "--max-bytes", "1"]) == 0
        out = capsys.readouterr().out
        assert "orphans: removed 0 entries" in out  # both grammars registered
        assert main(["store", "ls", str(store)]) == 0
        assert "0 entries" in capsys.readouterr().out  # LRU sweep took the rest


class TestObservabilityCommands:
    def test_query_profile_reports_covering_span_tree(self, run_path, capsys):
        """The acceptance bar: per-operator spans cover >= 95% of the root
        span's wall time on the paper-example run."""
        assert main(["query", str(run_path), "_* e _*", "--profile"]) == 0
        captured = capsys.readouterr()
        assert "matching pairs" in captured.out  # stdout output is unchanged
        assert "query.evaluate" in captured.err
        match = re.search(r"coverage: (\d+(?:\.\d+)?)%", captured.err)
        assert match is not None, captured.err
        assert float(match.group(1)) >= 95.0

    def test_query_trace_json_writes_a_chrome_trace(self, tmp_path, run_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(["query", str(run_path), "A+",
                     "--trace-json", str(trace_path)]) == 0
        capsys.readouterr()
        document = json.loads(trace_path.read_text())
        events = document["traceEvents"]
        assert "query.evaluate" in {event["name"] for event in events}
        complete = [event for event in events if event["ph"] == "X"]
        assert complete and all(event["dur"] >= 0 for event in complete)

    def test_query_save_profile_persists_to_the_store(self, tmp_path, run_path, capsys):
        from repro.store import IndexStore

        store_dir = tmp_path / "store"
        assert main(["query", str(run_path), "A+",
                     "--save-profile", str(store_dir)]) == 0
        capsys.readouterr()
        (profile,) = IndexStore(store_dir).load_profiles("r1")
        assert profile.query == "A+"
        assert profile.root is not None
        assert profile.coverage() >= 0.95

    def test_trace_command_writes_the_document(self, tmp_path, run_path, capsys):
        out_path = tmp_path / "trace.json"
        assert main(["trace", str(run_path), "_* a _*",
                     "--output", str(out_path)]) == 0
        assert "spans" in capsys.readouterr().err
        names = {
            event["name"]
            for event in json.loads(out_path.read_text())["traceEvents"]
        }
        assert "query.evaluate" in names
        assert any(name.startswith("exec.") for name in names)

    def test_trace_command_defaults_to_stdout(self, run_path, capsys):
        assert main(["trace", str(run_path), "A+"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["traceEvents"]

    def test_metrics_replay_renders_prometheus_text(self, tmp_path, run_path, capsys):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            json.dumps({"op": "allpairs", "run": "r1", "query": "A+"}) + "\n"
        )
        assert main(["metrics", "--requests", str(requests),
                     "--run", str(run_path), "--trace"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_cache_hits_total counter" in out
        assert "# TYPE repro_service_request_seconds histogram" in out
        assert re.search(r"repro_obs_spans_total [1-9]", out)

    def test_metrics_without_replay_prints_the_registry(self, capsys):
        assert main(["metrics"]) == 0
        assert "repro_obs_spans_total" in capsys.readouterr().out
