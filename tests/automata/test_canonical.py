"""Tests for the canonical regex normal form (the cross-query cache key)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.dfa import dfa_from_regex
from repro.automata.regex import (
    canonical_query_text,
    canonicalize_regex,
    parse_regex,
    regex_is_nullable,
    regex_to_string,
)

ALPHABET = ("a", "b", "c")


def _dfas_equivalent(first, second) -> bool:
    """Language equivalence of two complete DFAs via the product automaton."""
    alphabet = first.alphabet | second.alphabet
    first = first.with_alphabet(alphabet)
    second = second.with_alphabet(alphabet)
    seen = {(first.start, second.start)}
    queue = [(first.start, second.start)]
    while queue:
        state1, state2 = queue.pop()
        if first.is_accepting(state1) != second.is_accepting(state2):
            return False
        for tag in alphabet:
            pair = (first.step(state1, tag), second.step(state2, tag))
            if pair not in seen:
                seen.add(pair)
                queue.append(pair)
    return True


class TestExplicitRewrites:
    @pytest.mark.parametrize(
        ("left", "right"),
        [
            ("a|b", "b|a"),
            ("(a)", "a"),
            ("a . (b | c)", "a (c|b)"),
            ("(a|b)|c", "c | (b | a)"),
            ("a|a|b", "b|a"),
            ("(a*)*", "a*"),
            ("(a+)*", "a*"),
            ("(a*)+", "a*"),
            ("(a+)+", "a+"),
            ("(a|~)*", "a*"),
            ("(a|~)+", "a*"),
            ("~*", "~"),
            ("~+", "~"),
            ("a ~ b", "a . b"),
            ("a | ~ | b*", "b* | a"),
        ],
    )
    def test_equivalent_spellings_share_canonical_text(self, left, right):
        assert canonical_query_text(left) == canonical_query_text(right)

    @pytest.mark.parametrize(
        ("left", "right"),
        [
            ("a|b", "a.b"),
            ("a*", "a+"),
            ("a", "b"),
            ("a|~", "a"),
            ("_", "a"),
        ],
    )
    def test_distinct_languages_stay_distinct(self, left, right):
        assert canonical_query_text(left) != canonical_query_text(right)

    def test_nullability(self):
        assert regex_is_nullable(parse_regex("a*"))
        assert regex_is_nullable(parse_regex("~"))
        assert regex_is_nullable(parse_regex("a* b*"))
        assert regex_is_nullable(parse_regex("a | ~"))
        assert not regex_is_nullable(parse_regex("a b*"))
        assert not regex_is_nullable(parse_regex("(a|b)+"))


# -- property tests over generated regexes -------------------------------------------


@st.composite
def regexes(draw, depth=3):
    if depth == 0:
        return draw(
            st.sampled_from([*ALPHABET, "_", "~"]).map(parse_regex)
        )
    kind = draw(st.sampled_from(["leaf", "concat", "union", "star", "plus"]))
    if kind == "leaf":
        return draw(regexes(depth=0))
    if kind in ("star", "plus"):
        child = draw(regexes(depth=depth - 1))
        text = regex_to_string(child)
        return parse_regex(f"({text}){'*' if kind == 'star' else '+'}")
    parts = draw(st.lists(regexes(depth=depth - 1), min_size=2, max_size=3))
    joiner = " . " if kind == "concat" else " | "
    return parse_regex(joiner.join(f"({regex_to_string(part)})" for part in parts))


@settings(max_examples=150, deadline=None)
@given(node=regexes())
def test_canonicalization_is_idempotent(node):
    canonical = canonicalize_regex(node)
    assert canonicalize_regex(canonical) == canonical
    # ... and so is the rendered round trip used as the cache key.
    text = regex_to_string(canonical)
    assert canonical_query_text(text) == text


@settings(max_examples=150, deadline=None)
@given(node=regexes())
def test_canonicalization_preserves_language(node):
    canonical = canonicalize_regex(node)
    original_dfa = dfa_from_regex(node, ALPHABET)
    canonical_dfa = dfa_from_regex(canonical, ALPHABET)
    assert _dfas_equivalent(original_dfa, canonical_dfa)


@settings(max_examples=100, deadline=None)
@given(node=regexes())
def test_canonical_text_parses_back_to_same_canonical_form(node):
    canonical = canonicalize_regex(node)
    assert canonicalize_regex(parse_regex(regex_to_string(canonical))) == canonical
