"""Tests for the regular path query parser and syntax tree helpers."""

import pytest

from repro.automata.regex import (
    AnySymbol,
    Concat,
    Epsilon,
    Plus,
    Star,
    Symbol,
    Union,
    parse_regex,
    regex_alphabet,
    regex_size,
    regex_to_string,
    regex_uses_wildcard,
)
from repro.errors import QuerySyntaxError


class TestParsing:
    def test_single_tag(self):
        assert parse_regex("blast") == Symbol("blast")

    def test_multi_character_tags_are_single_symbols(self):
        node = parse_regex("BLAST . align")
        assert node == Concat((Symbol("BLAST"), Symbol("align")))

    def test_whitespace_concatenation(self):
        assert parse_regex("a b c") == Concat((Symbol("a"), Symbol("b"), Symbol("c")))

    def test_dot_concatenation(self):
        assert parse_regex("a.b.c") == Concat((Symbol("a"), Symbol("b"), Symbol("c")))

    def test_alternation(self):
        assert parse_regex("a | b") == Union((Symbol("a"), Symbol("b")))

    def test_alternation_duplicates_removed(self):
        assert parse_regex("a | b | a") == Union((Symbol("a"), Symbol("b")))

    def test_star_and_plus(self):
        assert parse_regex("a*") == Star(Symbol("a"))
        assert parse_regex("a+") == Plus(Symbol("a"))

    def test_wildcard(self):
        assert parse_regex("_") == AnySymbol()
        assert parse_regex("_*") == Star(AnySymbol())

    def test_epsilon_forms(self):
        assert parse_regex("~") == Epsilon()
        assert parse_regex("eps") == Epsilon()
        assert parse_regex("") == Epsilon()
        assert parse_regex("   ") == Epsilon()

    def test_grouping(self):
        node = parse_regex("(a | b) c")
        assert node == Concat((Union((Symbol("a"), Symbol("b"))), Symbol("c")))

    def test_paper_intro_query(self):
        node = parse_regex("x.(a1|a2)+.s._*.p")
        assert node == Concat(
            (
                Symbol("x"),
                Plus(Union((Symbol("a1"), Symbol("a2")))),
                Symbol("s"),
                Star(AnySymbol()),
                Symbol("p"),
            )
        )

    def test_nested_repetition(self):
        assert parse_regex("a*+") == Plus(Star(Symbol("a")))

    def test_tags_with_dash_and_colon(self):
        assert parse_regex("fetch-data | load:db") == Union(
            (Symbol("fetch-data"), Symbol("load:db"))
        )

    def test_parse_accepts_existing_node(self):
        node = Star(Symbol("a"))
        assert parse_regex(node) is node

    def test_concat_flattening(self):
        node = parse_regex("(a b) (c d)")
        assert node == Concat(tuple(Symbol(t) for t in "abcd"))

    def test_epsilon_dropped_in_concatenation(self):
        assert parse_regex("a ~ b") == Concat((Symbol("a"), Symbol("b")))


class TestParseErrors:
    @pytest.mark.parametrize("bad", ["(", ")", "a)", "(a", "|", "*", "a | ", "a @ b"])
    def test_syntax_errors(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_regex(bad)


class TestUtilities:
    def test_round_trip_through_string(self):
        queries = [
            "x.(a1|a2)+.s._*.p",
            "_* e _*",
            "(a|b)* c",
            "a+ (b | ~)",
        ]
        for query in queries:
            node = parse_regex(query)
            assert parse_regex(regex_to_string(node)) == node

    def test_alphabet(self):
        assert regex_alphabet(parse_regex("x.(a1|a2)+.s._*.p")) == {"x", "a1", "a2", "s", "p"}

    def test_wildcard_detection(self):
        assert regex_uses_wildcard(parse_regex("_* a"))
        assert not regex_uses_wildcard(parse_regex("a b | c"))

    def test_size_counts_nodes(self):
        assert regex_size(parse_regex("a")) == 1
        assert regex_size(parse_regex("a b")) == 3
        assert regex_size(parse_regex("(a|b)*")) == 4
