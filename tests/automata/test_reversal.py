"""Automaton reversal: DFA.reversed() / NFA.reversed().

The backward frontier search rests on one identity: ``w ∈ L(A)`` iff
``reverse(w) ∈ L(A.reversed())``.  These tests check it (and the double
reversal) against sampled strings from Hypothesis-generated regexes, and the
NFA reversal against direct simulation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.dfa import dfa_from_regex
from repro.automata.nfa import nfa_from_regex

TAGS = ["a", "b", "c"]


@st.composite
def regex_text(draw):
    def leaf():
        choice = draw(st.integers(0, 3))
        if choice == 0:
            return "_"
        if choice == 1:
            return "~"  # the empty string
        return draw(st.sampled_from(TAGS))

    shape = draw(st.integers(0, 4))
    if shape == 0:
        return leaf()
    if shape == 1:
        return f"{leaf()} . {leaf()}"
    if shape == 2:
        return f"({leaf()} | {leaf()})"
    if shape == 3:
        return f"({draw(st.sampled_from(TAGS))})*"
    return f"{leaf()} . ({leaf()} | {leaf()})+ . {leaf()}"


words = st.lists(st.sampled_from(TAGS), min_size=0, max_size=6)


class TestDFAReversal:
    @given(regex_text(), words)
    @settings(max_examples=150, deadline=None)
    def test_reversed_accepts_reversed_words(self, text, word):
        dfa = dfa_from_regex(text, TAGS)
        assert dfa.reversed().accepts(reversed(word)) == dfa.accepts(word)

    @given(regex_text(), words)
    @settings(max_examples=150, deadline=None)
    def test_double_reversal_is_the_original_language(self, text, word):
        dfa = dfa_from_regex(text, TAGS)
        assert dfa.reversed().reversed().accepts(word) == dfa.accepts(word)

    @given(regex_text())
    @settings(max_examples=50, deadline=None)
    def test_reversal_keeps_the_alphabet_and_completeness(self, text):
        dfa = dfa_from_regex(text, TAGS)
        reversed_dfa = dfa.reversed()
        assert reversed_dfa.alphabet == dfa.alphabet
        # Completeness is validated by the DFA constructor, but make the
        # totality contract of the frontier search explicit.
        for row in reversed_dfa.transitions:
            assert set(row) == set(reversed_dfa.alphabet)

    def test_empty_language_reverses_to_empty(self):
        dfa = dfa_from_regex("a . b", TAGS)
        # 'b a' is the only reversed member; anything else stays out.
        assert dfa.reversed().accepts(["b", "a"])
        assert not dfa.reversed().accepts(["a", "b"])
        assert not dfa.reversed().accepts([])

    def test_epsilon_stays_in_both_directions(self):
        dfa = dfa_from_regex("(a)*", TAGS)
        assert dfa.reversed().accepts([])

    def test_macro_symbols_survive_reversal(self):
        """The reversed automaton of a macro-rewritten query keeps the
        synthetic NUL-prefixed symbols out of the wildcard's reach."""
        macro = "\x00safe:0"
        dfa = dfa_from_regex("a", TAGS).with_alphabet([macro])
        reversed_dfa = dfa.reversed()
        assert macro in reversed_dfa.alphabet
        assert not reversed_dfa.accepts([macro])
        assert reversed_dfa.accepts(["a"])


class TestNFAReversal:
    @given(regex_text(), words)
    @settings(max_examples=150, deadline=None)
    def test_reversed_nfa_simulation(self, text, word):
        nfa = nfa_from_regex(text)
        assert nfa.reversed().accepts(reversed(word)) == nfa.accepts(word)

    @given(regex_text(), words)
    @settings(max_examples=100, deadline=None)
    def test_double_reversal(self, text, word):
        nfa = nfa_from_regex(text)
        assert nfa.reversed().reversed().accepts(word) == nfa.accepts(word)
