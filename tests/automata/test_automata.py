"""Tests for NFA construction, determinization, and DFA minimization."""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.dfa import DFA, determinize, dfa_from_regex
from repro.automata.minimize import minimize_dfa
from repro.automata.nfa import nfa_from_regex
from repro.automata.regex import (
    AnySymbol,
    Concat,
    Plus,
    Star,
    Symbol,
    Union,
    parse_regex,
    regex_to_string,
)

ALPHABET = ("a", "b", "c")


def accepts(query: str, word: str, alphabet=ALPHABET) -> bool:
    """Helper: run the word (one tag per character) through the minimal DFA."""
    dfa = dfa_from_regex(query, alphabet)
    return dfa.accepts(list(word))


class TestNFA:
    @pytest.mark.parametrize(
        ("query", "word", "expected"),
        [
            ("a", "a", True),
            ("a", "b", False),
            ("a b", "ab", True),
            ("a b", "ba", False),
            ("a | b", "b", True),
            ("a*", "", True),
            ("a*", "aaaa", True),
            ("a+", "", False),
            ("a+", "aaa", True),
            ("_* b _*", "aaabccc", True),
            ("_* b _*", "aaaccc", False),
            ("~", "", True),
            ("~", "a", False),
            ("x.(a1|a2)+.s._*.p", "", False),
        ],
    )
    def test_acceptance(self, query, word, expected):
        nfa = nfa_from_regex(query)
        assert nfa.accepts(list(word)) is expected

    def test_multi_character_tags(self):
        nfa = nfa_from_regex("BLAST (align | merge)* publish")
        assert nfa.accepts(["BLAST", "align", "merge", "publish"])
        assert not nfa.accepts(["BLAST", "publish", "align"])


class TestDFA:
    def test_determinize_matches_nfa(self):
        query = "(a|b)* a b"
        nfa = nfa_from_regex(query)
        dfa = determinize(nfa, ALPHABET)
        for word in ["ab", "aab", "bab", "ba", "", "abab", "abb"]:
            assert dfa.accepts(list(word)) == nfa.accepts(list(word))

    def test_dfa_is_complete(self):
        dfa = dfa_from_regex("a b", ALPHABET)
        for state in range(dfa.state_count):
            assert set(dfa.transitions[state]) == set(dfa.alphabet)

    def test_unknown_tag_goes_to_dead_state(self):
        dfa = dfa_from_regex("a", ALPHABET)
        state = dfa.step(dfa.start, "unknown-tag")
        assert state == dfa.dead_state()

    def test_transition_matrix_is_a_function(self):
        dfa = dfa_from_regex("_* e _*", ("a", "e"))
        matrix = dfa.transition_matrix("e")
        for state in range(dfa.state_count):
            assert bin(matrix.row_mask(state)).count("1") == 1
            assert matrix.get(state, dfa.transitions[state]["e"])

    def test_transition_matrix_for_unknown_tag(self):
        dfa = dfa_from_regex("a", ALPHABET)
        matrix = dfa.transition_matrix("zzz")
        dead = dfa.dead_state()
        assert all(matrix.get(state, dead) for state in range(dfa.state_count))

    def test_with_alphabet_extends_and_preserves_language(self):
        dfa = dfa_from_regex("a+", ("a",))
        extended = dfa.with_alphabet(("a", "b", "c"))
        assert extended.alphabet == {"a", "b", "c"}
        assert extended.accepts(["a", "a"])
        assert not extended.accepts(["a", "b"])

    def test_accepts_epsilon(self):
        assert dfa_from_regex("a*", ALPHABET).accepts_epsilon()
        assert not dfa_from_regex("a+", ALPHABET).accepts_epsilon()

    def test_reachable_states_cover_all_after_minimization(self):
        dfa = dfa_from_regex("(a|b)* c", ALPHABET)
        assert dfa.reachable_states() == frozenset(range(dfa.state_count))

    def test_incomplete_transitions_rejected(self):
        with pytest.raises(ValueError, match="lacks transitions"):
            DFA(
                state_count=1,
                alphabet=frozenset({"a"}),
                transitions=({},),
                start=0,
                accepting=frozenset(),
            )


class TestMinimization:
    def test_paper_query_r3_has_two_live_states(self):
        # R3 = _* e _* : minimal DFA has q0, qf (no dead state is reachable-
        # useful because every string can still be extended to a match).
        dfa = dfa_from_regex("_* e _*", ("a", "b", "c", "d", "e", "A", "B"))
        assert dfa.state_count == 2

    def test_single_symbol_query(self):
        # R4 = e over alphabet {e, ...}: q0, qf and a dead state.
        dfa = dfa_from_regex("e", ("a", "e"))
        assert dfa.state_count == 3
        assert dfa.dead_state() is not None

    def test_minimization_is_idempotent(self):
        dfa = dfa_from_regex("(a|b)+ c*", ALPHABET, minimal=True)
        again = minimize_dfa(dfa)
        assert again.state_count == dfa.state_count

    def test_minimization_preserves_language(self):
        query = "(a b)* (c | a a)"
        raw = determinize(nfa_from_regex(query), ALPHABET)
        minimal = minimize_dfa(raw)
        assert minimal.state_count <= raw.state_count
        for word in ["", "ab", "c", "aa", "abc", "abaa", "abab", "aab", "ba"]:
            assert minimal.accepts(list(word)) == raw.accepts(list(word))

    def test_known_minimal_size(self):
        # Strings over {a,b} with an even number of a's: 2 states.
        dfa = dfa_from_regex("(b* a b* a)* b*", ("a", "b"))
        assert dfa.state_count == 2


# ---------------------------------------------------------------------------
# Property-based comparison against Python's re module.  Our tags are mapped
# to single characters so the query can be translated to a standard regex.
# ---------------------------------------------------------------------------


@st.composite
def regex_trees(draw, depth=3):
    if depth == 0:
        return draw(
            st.sampled_from([Symbol("a"), Symbol("b"), Symbol("c"), AnySymbol()])
        )
    choice = draw(st.integers(0, 5))
    if choice <= 1:
        return draw(regex_trees(depth=0))
    if choice == 2:
        parts = draw(st.lists(regex_trees(depth=depth - 1), min_size=2, max_size=3))
        return Concat(tuple(parts))
    if choice == 3:
        parts = draw(st.lists(regex_trees(depth=depth - 1), min_size=2, max_size=3))
        return Union(tuple(parts))
    if choice == 4:
        return Star(draw(regex_trees(depth=depth - 1)))
    return Plus(draw(regex_trees(depth=depth - 1)))


def to_python_regex(node) -> str:
    if isinstance(node, Symbol):
        return re.escape(node.tag)
    if isinstance(node, AnySymbol):
        return "[abc]"
    if isinstance(node, Concat):
        return "".join(f"(?:{to_python_regex(p)})" for p in node.parts)
    if isinstance(node, Union):
        return "|".join(f"(?:{to_python_regex(p)})" for p in node.parts)
    if isinstance(node, Star):
        return f"(?:{to_python_regex(node.child)})*"
    if isinstance(node, Plus):
        return f"(?:{to_python_regex(node.child)})+"
    raise TypeError(node)


class TestAgainstPythonRe:
    @given(regex_trees(), st.text(alphabet="abc", max_size=8))
    @settings(max_examples=150, deadline=None)
    def test_dfa_agrees_with_re(self, tree, word):
        dfa = dfa_from_regex(tree, ALPHABET)
        expected = re.fullmatch(to_python_regex(tree), word) is not None
        assert dfa.accepts(list(word)) is expected

    @given(regex_trees())
    @settings(max_examples=80, deadline=None)
    def test_round_trip_preserves_language_on_samples(self, tree):
        rendered = regex_to_string(tree)
        reparsed = parse_regex(rendered)
        dfa1 = dfa_from_regex(tree, ALPHABET)
        dfa2 = dfa_from_regex(reparsed, ALPHABET)
        for word in ["", "a", "b", "c", "ab", "abc", "cba", "aaa", "bcbc"]:
            assert dfa1.accepts(list(word)) == dfa2.accepts(list(word))
