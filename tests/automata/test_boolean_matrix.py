"""Tests for the bitmask-backed boolean matrices."""

import binascii

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.boolean_matrix import BooleanMatrix


def dense(matrix: BooleanMatrix) -> list[list[bool]]:
    return [[matrix.get(i, j) for j in range(matrix.size)] for i in range(matrix.size)]


def from_dense(rows: list[list[bool]]) -> BooleanMatrix:
    size = len(rows)
    return BooleanMatrix.from_pairs(
        size, ((i, j) for i in range(size) for j in range(size) if rows[i][j])
    )


class TestConstruction:
    def test_identity(self):
        matrix = BooleanMatrix.identity(3)
        assert dense(matrix) == [[True, False, False], [False, True, False], [False, False, True]]

    def test_zero_and_full(self):
        assert BooleanMatrix.zero(2).is_zero()
        assert list(BooleanMatrix.full(2).pairs()) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_from_pairs_bounds_check(self):
        with pytest.raises(ValueError, match="outside a"):
            BooleanMatrix.from_pairs(2, [(0, 2)])

    def test_row_length_check(self):
        with pytest.raises(ValueError, match="expected 2 rows"):
            BooleanMatrix(2, [1])

    def test_from_function(self):
        matrix = BooleanMatrix.from_function(3, {0: 1, 1: 2})
        assert matrix.get(0, 1)
        assert matrix.get(1, 2)
        assert not matrix.get(2, 0)


class TestAlgebra:
    def test_multiplication_matches_relational_composition(self):
        a = BooleanMatrix.from_pairs(3, [(0, 1), (1, 2)])
        b = BooleanMatrix.from_pairs(3, [(1, 0), (2, 2)])
        product = a @ b
        assert set(product.pairs()) == {(0, 0), (1, 2)}

    def test_identity_is_neutral(self):
        a = BooleanMatrix.from_pairs(4, [(0, 3), (2, 1), (3, 3)])
        identity = BooleanMatrix.identity(4)
        assert a @ identity == a
        assert identity @ a == a

    def test_or_and(self):
        a = BooleanMatrix.from_pairs(2, [(0, 0)])
        b = BooleanMatrix.from_pairs(2, [(0, 1)])
        assert set((a | b).pairs()) == {(0, 0), (0, 1)}
        assert (a & b).is_zero()

    def test_power(self):
        chain = BooleanMatrix.from_pairs(4, [(0, 1), (1, 2), (2, 3)])
        assert set(chain.power(2).pairs()) == {(0, 2), (1, 3)}
        assert set(chain.power(3).pairs()) == {(0, 3)}
        assert chain.power(0) == BooleanMatrix.identity(4)
        assert chain.power(4).is_zero()

    def test_power_negative_rejected(self):
        with pytest.raises(ValueError, match="exponent must be non-negative"):
            BooleanMatrix.identity(2).power(-1)

    def test_transitive_closure(self):
        chain = BooleanMatrix.from_pairs(3, [(0, 1), (1, 2)])
        assert set(chain.transitive_closure().pairs()) == {(0, 1), (1, 2), (0, 2)}
        reflexive = chain.reflexive_transitive_closure()
        assert all(reflexive.get(i, i) for i in range(3))

    def test_transpose(self):
        a = BooleanMatrix.from_pairs(3, [(0, 2), (1, 0)])
        assert set(a.transpose().pairs()) == {(2, 0), (0, 1)}

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="size mismatch"):
            BooleanMatrix.identity(2) @ BooleanMatrix.identity(3)

    def test_hashable_and_equal(self):
        a = BooleanMatrix.from_pairs(2, [(0, 1)])
        b = BooleanMatrix.from_pairs(2, [(0, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_propagate_row(self):
        a = BooleanMatrix.from_pairs(3, [(0, 1), (1, 2), (2, 0)])
        assert a.propagate_row(0b001) == 0b010  # row 0 -> column 1
        assert a.propagate_row(0b011) == 0b110  # rows {0, 1} -> columns {1, 2}
        assert a.propagate_row(0) == 0
        # Stray bits beyond the matrix size are ignored.
        assert a.propagate_row(0b1000) == 0

    def test_propagate_column(self):
        a = BooleanMatrix.from_pairs(3, [(0, 1), (1, 2), (2, 0)])
        assert a.propagate_column(0b010) == 0b001  # column 1 <- row 0
        assert a.propagate_column(0b101) == 0b110  # columns {0, 2} <- rows {1, 2}
        assert a.propagate_column(0) == 0


@st.composite
def matrices(draw, size=3):
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, size - 1), st.integers(0, size - 1)),
            max_size=size * size,
        )
    )
    return BooleanMatrix.from_pairs(size, pairs)


class TestProperties:
    @given(matrices(), matrices(), matrices())
    @settings(max_examples=60, deadline=None)
    def test_multiplication_associative(self, a, b, c):
        assert (a @ b) @ c == a @ (b @ c)

    @given(matrices(), matrices())
    @settings(max_examples=60, deadline=None)
    def test_multiplication_agrees_with_naive(self, a, b):
        size = a.size
        naive = [
            [any(a.get(i, k) and b.get(k, j) for k in range(size)) for j in range(size)]
            for i in range(size)
        ]
        assert dense(a @ b) == naive

    @given(matrices(), st.integers(0, 6))
    @settings(max_examples=60, deadline=None)
    def test_power_agrees_with_repeated_multiplication(self, a, exponent):
        expected = BooleanMatrix.identity(a.size)
        for _ in range(exponent):
            expected = expected @ a
        assert a.power(exponent) == expected

    @given(matrices(), st.integers(0, 7))
    @settings(max_examples=60, deadline=None)
    def test_propagate_row_agrees_with_row_selection(self, a, mask):
        expected = 0
        for row in range(a.size):
            if mask >> row & 1:
                expected |= a.row_mask(row)
        assert a.propagate_row(mask) == expected

    @given(matrices(), st.integers(0, 7))
    @settings(max_examples=60, deadline=None)
    def test_propagate_column_is_transposed_row_propagation(self, a, mask):
        assert a.propagate_column(mask) == a.transpose().propagate_row(mask)


class TestPackedEncoding:
    @given(matrices())
    @settings(max_examples=80, deadline=None)
    def test_packed_round_trip(self, matrix):
        assert BooleanMatrix.from_packed(matrix.size, matrix.to_packed()) == matrix

    @given(st.integers(1, 200))
    @settings(max_examples=30, deadline=None)
    def test_large_identity_round_trips(self, size):
        matrix = BooleanMatrix.identity(size)
        assert BooleanMatrix.from_packed(size, matrix.to_packed()) == matrix

    def test_empty_matrix(self):
        assert BooleanMatrix.from_packed(0, BooleanMatrix.zero(0).to_packed()).size == 0

    def test_size_mismatch_raises(self):
        packed = BooleanMatrix.identity(4).to_packed()
        with pytest.raises(ValueError, match="packed matrix holds"):
            BooleanMatrix.from_packed(5, packed)

    def test_bad_base64_raises(self):
        # b64decode(validate=True) raises binascii.Error (a ValueError).
        with pytest.raises(binascii.Error):
            BooleanMatrix.from_packed(2, "not base64 !!!")

    def test_packed_is_smaller_than_rows_for_big_matrices(self):
        import json

        matrix = BooleanMatrix.full(64)
        rows_len = len(json.dumps(matrix.to_rows()))
        packed_len = len(json.dumps([matrix.size, matrix.to_packed()]))
        assert packed_len < rows_len
