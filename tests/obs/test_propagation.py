"""Trace-context propagation across the executor's pool backends.

The load-bearing claims: chunk spans recorded by thread-pool workers and
stitched from process-pool records both nest under the ``exec.frontier_search``
span of the submitting thread, and a saturated budget degrading execution to
serial still produces a correctly nested search span (mode visible).
"""

from repro.core.decomposition import plan_decomposition
from repro.core.exec import ExecutorConfig, WorkerBudget, build_physical_plan, execute_iter
from repro.core.query_index import build_query_index
from repro.datasets.paper_example import paper_specification
from repro.obs import ExecutionProfile, Tracer, use_tracer
from repro.obs.metrics import MetricsRegistry
from repro.workflow.derivation import derive_run

_SPEC = paper_specification()
_RUN = derive_run(_SPEC, seed=0, target_edges=70)
_QUERY = "_* a _*"  # unsafe for the paper grammar: exercises frontier search


def _physical(executor):
    plan = plan_decomposition(_SPEC, _QUERY)
    nodes = list(_RUN.node_ids())
    return build_physical_plan(
        _RUN,
        plan,
        nodes,
        None,
        indexes=lambda node: build_query_index(_SPEC, node),
        strategy="frontier",
        executor=executor,
    )


def _traced_pairs(executor):
    tracer = Tracer(registry=MetricsRegistry())
    with use_tracer(tracer):
        pairs = set(execute_iter(_physical(executor)))
    return pairs, tracer.spans()


def _search_span(spans):
    matches = [span for span in spans if span.name == "exec.frontier_search"]
    assert len(matches) == 1
    return matches[0]


_REFERENCE = set(execute_iter(_physical(ExecutorConfig())))


class TestThreadBackend:
    def test_chunk_spans_nest_under_the_search_span(self):
        pairs, spans = _traced_pairs(ExecutorConfig(workers=4, backend="thread"))
        assert pairs == _REFERENCE
        search = _search_span(spans)
        assert search.attrs["mode"] == "parallel"
        chunks = [span for span in spans if span.name == "exec.frontier_chunk"]
        assert chunks, "thread workers recorded no chunk spans"
        assert all(chunk.parent_id == search.span_id for chunk in chunks)
        # Live spans from pool threads carry the pool thread's name.
        assert all(chunk.thread != search.thread for chunk in chunks)
        assert sum(chunk.attrs["seeds"] for chunk in chunks) == len(_RUN.node_ids())

    def test_profile_assembles_one_connected_tree(self):
        _, spans = _traced_pairs(ExecutorConfig(workers=4, backend="thread"))
        profile = ExecutionProfile.from_spans(spans)
        assert profile.root is not None
        names = set()
        stack = [profile.root]
        while stack:
            node = stack.pop()
            names.add(node.name)
            stack.extend(node.children)
        assert "exec.frontier_chunk" in names


class TestProcessBackend:
    def test_worker_records_stitch_under_the_search_span(self):
        pairs, spans = _traced_pairs(ExecutorConfig(workers=2, backend="process"))
        assert pairs == _REFERENCE
        search = _search_span(spans)
        assert search.attrs["mode"] == "parallel"
        chunks = [span for span in spans if span.name == "exec.frontier_chunk"]
        assert chunks, "process workers shipped no chunk records"
        for chunk in chunks:
            assert chunk.parent_id == search.span_id
            assert chunk.thread == "worker"
            # Stitching clamps into the search window, so the profile stays
            # well formed even under exotic clock behavior.
            assert search.start <= chunk.start <= chunk.end
        assert sum(chunk.attrs["seeds"] for chunk in chunks) == len(_RUN.node_ids())


class TestSerialDegrade:
    def test_saturated_budget_keeps_the_span_nested_and_visible(self):
        budget = WorkerBudget(2)
        with budget.lease(2):  # a busy batch holds the whole budget
            config = ExecutorConfig(workers=4, backend="thread", budget=budget)
            tracer = Tracer(registry=MetricsRegistry())
            with use_tracer(tracer):
                with tracer.span("caller") as caller:
                    pairs = set(execute_iter(_physical(config)))
        assert pairs == _REFERENCE
        search = _search_span(tracer.spans())
        assert search.attrs["mode"] == "serial-degraded"
        assert search.parent_id == caller.span_id
        assert not [
            span for span in tracer.spans() if span.name == "exec.frontier_chunk"
        ]

    def test_unsaturated_budget_still_fans_out(self):
        config = ExecutorConfig(workers=2, backend="thread", budget=WorkerBudget(4))
        pairs, spans = _traced_pairs(config)
        assert pairs == _REFERENCE
        search = _search_span(spans)
        assert search.attrs["mode"] == "parallel"
        assert search.attrs["workers"] == 2
