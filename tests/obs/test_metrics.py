"""The metrics registry: instruments, collectors, snapshots."""

import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)


class TestInstruments:
    def test_counter_only_goes_up(self):
        counter = Counter("c", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.dec(3)
        gauge.inc()
        assert gauge.value == 8

    def test_histogram_buckets_are_cumulative(self):
        histogram = Histogram("h", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.bucket_counts() == (1, 2, 3, 4)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(5.555)
        assert histogram.samples() == {"h_count": 4.0, "h_sum": pytest.approx(5.555)}

    def test_histogram_needs_buckets(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("h", buckets=())

    def test_concurrent_increments_do_not_lose_updates(self):
        counter = Counter("c")

        def bump() -> None:
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 4000


class TestRegistry:
    def test_instruments_are_get_or_create(self):
        registry = MetricsRegistry()
        first = registry.counter("requests", "total requests")
        second = registry.counter("requests")
        assert first is second

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="is a counter, not a gauge"):
            registry.gauge("x")
        with pytest.raises(TypeError, match="not a histogram"):
            registry.histogram("x")

    def test_snapshot_merges_instruments_and_collectors(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.gauge("live").set(2)
        registry.register_collector("pool", lambda: {"pool_in_use": 1.0})
        snapshot = registry.snapshot()
        assert snapshot["hits"] == 3.0
        assert snapshot["live"] == 2.0
        assert snapshot["pool_in_use"] == 1.0

    def test_collectors_win_name_collisions(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(1)
        registry.register_collector("live", lambda: {"depth": 9.0})
        assert registry.snapshot()["depth"] == 9.0

    def test_collector_replacement_follows_the_live_instance(self):
        registry = MetricsRegistry()
        registry.register_collector("svc", lambda: {"v": 1.0})
        registry.register_collector("svc", lambda: {"v": 2.0})
        assert registry.snapshot() == {"v": 2.0}
        registry.unregister_collector("svc")
        assert registry.snapshot() == {}

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.register_collector("x", dict)
        registry.reset()
        assert registry.snapshot() == {}

    def test_process_wide_registry_is_a_singleton(self):
        assert get_registry() is get_registry()
