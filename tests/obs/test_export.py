"""Exporters: Chrome trace-event JSON and Prometheus text exposition."""

import json

from repro.obs import Tracer, chrome_trace, prometheus_text
from repro.obs.metrics import MetricsRegistry


def _spans():
    tracer = Tracer(registry=MetricsRegistry())
    with tracer.span("query.evaluate", query="a b"):
        with tracer.span("exec.frontier_search", mode="serial"):
            pass
    return tracer.spans()


class TestChromeTrace:
    def test_complete_events_with_metadata(self):
        document = chrome_trace(_spans(), process_name="unit")
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        meta = [event for event in events if event["ph"] == "M"]
        assert meta[0]["args"] == {"name": "unit"}
        complete = [event for event in events if event["ph"] == "X"]
        assert {event["name"] for event in complete} == {
            "query.evaluate",
            "exec.frontier_search",
        }
        for event in complete:
            assert event["cat"] == event["name"].split(".")[0]
            assert event["dur"] >= 0
        child = next(e for e in complete if e["name"] == "exec.frontier_search")
        parent = next(e for e in complete if e["name"] == "query.evaluate")
        assert child["args"]["parent_id"] == parent["args"]["span_id"]
        assert child["args"]["mode"] == "serial"

    def test_document_is_json_serializable(self):
        json.dumps(chrome_trace(_spans()))

    def test_threads_map_to_stable_named_tids(self):
        document = chrome_trace(_spans())
        events = document["traceEvents"]
        thread_meta = [e for e in events if e.get("name") == "thread_name"]
        assert len(thread_meta) == 1  # one thread, one row
        tid = thread_meta[0]["tid"]
        assert all(e["tid"] == tid for e in events if e["ph"] == "X")

    def test_empty_span_list(self):
        document = chrome_trace(())
        assert [e["name"] for e in document["traceEvents"]] == ["process_name"]


class TestPrometheusText:
    def test_instruments_render_with_kind_and_help(self):
        registry = MetricsRegistry()
        registry.counter("repro_hits_total", "cache hits").inc(3)
        registry.gauge("repro_depth").set(1.5)
        text = prometheus_text(registry)
        assert "# HELP repro_hits_total cache hits" in text
        assert "# TYPE repro_hits_total counter" in text
        assert "repro_hits_total 3" in text
        assert "repro_depth 1.5" in text

    def test_histogram_renders_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_latency", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        text = prometheus_text(registry)
        assert 'repro_latency_bucket{le="0.1"} 1' in text
        assert 'repro_latency_bucket{le="1.0"} 2' in text
        assert 'repro_latency_bucket{le="+Inf"} 2' in text
        assert "repro_latency_count 2" in text

    def test_collectors_render_as_gauges(self):
        registry = MetricsRegistry()
        registry.register_collector("svc", lambda: {"repro_live": 4.0})
        text = prometheus_text(registry)
        assert "repro_live 4" in text
        assert "# TYPE repro_live gauge" in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""
