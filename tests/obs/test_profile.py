"""Execution profiles: assembly, coverage, serialization, rendering."""

from repro.obs import ExecutionProfile, Tracer
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span


def _span(name, span_id, parent_id, start, end, **attrs):
    return Span(
        name=name,
        trace_id=1,
        span_id=span_id,
        parent_id=parent_id,
        start=start,
        end=end,
        attrs=dict(attrs),
        thread="main",
    )


class TestAssembly:
    def test_tree_mirrors_parent_links(self):
        spans = [
            _span("child.a", 2, 1, 1.0, 3.0),
            _span("child.b", 3, 1, 3.0, 4.0),
            _span("root", 1, None, 0.0, 5.0),
        ]
        profile = ExecutionProfile.from_spans(spans, query="q", run="r")
        assert profile.root is not None
        assert profile.root.name == "root"
        assert [child.name for child in profile.root.children] == [
            "child.a",
            "child.b",
        ]
        assert profile.span_count == 3

    def test_longest_parentless_span_is_the_root(self):
        spans = [
            _span("short", 1, None, 0.0, 0.1),
            _span("long", 2, None, 0.0, 2.0),
        ]
        profile = ExecutionProfile.from_spans(spans)
        assert profile.root is not None and profile.root.name == "long"

    def test_from_a_real_tracer(self):
        tracer = Tracer(registry=MetricsRegistry())
        with tracer.span("query.evaluate"):
            with tracer.span("exec.plan"):
                pass
        profile = ExecutionProfile.from_spans(tracer.spans(), query="_*")
        assert profile.root is not None
        assert profile.root.name == "query.evaluate"
        assert profile.root.children[0].name == "exec.plan"

    def test_no_spans_yields_no_root(self):
        profile = ExecutionProfile.from_spans(())
        assert profile.root is None
        assert profile.coverage() == 0.0
        assert profile.render() == "profile: no spans recorded"


class TestCoverage:
    def test_full_coverage_with_overlap_merged(self):
        spans = [
            _span("a", 2, 1, 0.0, 3.0),
            _span("b", 3, 1, 2.0, 5.0),  # overlaps a by 1s
            _span("root", 1, None, 0.0, 5.0),
        ]
        profile = ExecutionProfile.from_spans(spans)
        assert profile.coverage() == 1.0

    def test_gaps_lower_coverage(self):
        spans = [
            _span("a", 2, 1, 0.0, 1.0),
            _span("root", 1, None, 0.0, 4.0),
        ]
        assert ExecutionProfile.from_spans(spans).coverage() == 0.25

    def test_children_clip_to_the_root_window(self):
        spans = [
            _span("a", 2, 1, -1.0, 5.0),  # wider than the root
            _span("root", 1, None, 0.0, 4.0),
        ]
        assert ExecutionProfile.from_spans(spans).coverage() == 1.0


class TestSerialization:
    def test_round_trip_preserves_tree_and_totals(self):
        spans = [
            _span("decode", 2, 1, 1.0, 2.0, pairs=9),
            _span("root", 1, None, 0.0, 4.0),
        ]
        profile = ExecutionProfile.from_spans(
            spans, query="a b", run="r1", meta={"command": "query"}
        )
        restored = ExecutionProfile.from_dict(profile.as_dict())
        assert restored.query == "a b"
        assert restored.run == "r1"
        assert restored.meta == {"command": "query"}
        assert restored.span_count == 2
        assert restored.root is not None
        assert restored.root.children[0].attrs == {"pairs": 9}
        assert restored.totals() == profile.totals()
        assert restored.coverage() == profile.coverage()

    def test_totals_aggregate_by_name(self):
        spans = [
            _span("decode", 2, 1, 0.0, 1.0),
            _span("decode", 3, 1, 1.0, 3.0),
            _span("root", 1, None, 0.0, 4.0),
        ]
        totals = ExecutionProfile.from_spans(spans).totals()
        assert totals["decode"] == {"count": 2.0, "total_s": 3.0}
        assert totals["root"]["count"] == 1.0


class TestRender:
    def test_render_shows_tree_attrs_and_coverage(self):
        spans = [
            _span("exec.plan", 2, 1, 0.5, 1.0, strategy="frontier"),
            _span("query.evaluate", 1, None, 0.0, 2.0),
        ]
        text = ExecutionProfile.from_spans(spans).render()
        assert "query.evaluate" in text
        assert "└─ exec.plan (strategy=frontier)" in text
        assert "coverage: 25.0%" in text
        assert "2 spans" in text

    def test_render_respects_max_depth(self):
        spans = [
            _span("leaf", 3, 2, 0.0, 1.0),
            _span("mid", 2, 1, 0.0, 1.0),
            _span("root", 1, None, 0.0, 1.0),
        ]
        text = ExecutionProfile.from_spans(spans).render(max_depth=1)
        assert "mid" in text
        assert "leaf" not in text
