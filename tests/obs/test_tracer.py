"""The tracer: nesting, thread-local stacks, context propagation, null path."""

import threading

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    SpanContext,
    Tracer,
    get_tracer,
    set_tracer,
    timed_call,
    use_tracer,
)
from repro.obs.metrics import MetricsRegistry


def _tracer() -> Tracer:
    # A private registry keeps the span counter out of the process-wide one.
    return Tracer(registry=MetricsRegistry())


class TestSpans:
    def test_spans_nest_and_record_in_completion_order(self):
        tracer = _tracer()
        with tracer.span("outer", kind="test") as outer:
            with tracer.span("inner") as inner:
                pass
        spans = tracer.spans()
        assert [span.name for span in spans] == ["inner", "outer"]
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.start <= inner.start <= inner.end <= outer.end
        assert outer.attrs == {"kind": "test"}

    def test_set_attaches_attributes_while_open(self):
        tracer = _tracer()
        with tracer.span("work") as span:
            span.set("pairs", 7)
        assert tracer.spans()[0].attrs["pairs"] == 7

    def test_exceptions_mark_the_span_and_propagate(self):
        tracer = _tracer()
        try:
            with tracer.span("doomed"):
                raise ValueError("boom")
        except ValueError:
            pass
        (span,) = tracer.spans()
        assert span.attrs["error"] == "ValueError"
        assert span.end >= span.start

    def test_sibling_threads_get_independent_stacks(self):
        tracer = _tracer()
        ready = threading.Barrier(2)

        def work(name: str) -> None:
            ready.wait()
            with tracer.span(name):
                pass

        with tracer.span("root"):
            threads = [
                threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        # The worker threads never saw the main thread's stack: their spans
        # are parentless, not children of "root".
        by_name = {span.name: span for span in tracer.spans()}
        assert by_name["t0"].parent_id is None
        assert by_name["t1"].parent_id is None

    def test_span_ids_are_unique_and_deterministic(self):
        tracer = _tracer()
        for _ in range(5):
            with tracer.span("s"):
                pass
        ids = [span.span_id for span in tracer.spans()]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_clear_drops_finished_spans(self):
        tracer = _tracer()
        with tracer.span("s"):
            pass
        tracer.clear()
        assert tracer.spans() == ()


class TestContextPropagation:
    def test_current_round_trips_through_plain_tuples(self):
        tracer = _tracer()
        with tracer.span("root"):
            context = tracer.current()
            assert context is not None
            assert SpanContext.from_tuple(context.as_tuple()) == context
        assert tracer.current() is None
        assert SpanContext.from_tuple(None) is None

    def test_attach_nests_spans_under_a_foreign_parent(self):
        tracer = _tracer()
        with tracer.span("root") as root:
            context = tracer.current()
        with tracer.attach(context):
            with tracer.span("child"):
                pass
        child = next(span for span in tracer.spans() if span.name == "child")
        assert child.parent_id == root.span_id
        # The placeholder itself is never recorded.
        assert {span.name for span in tracer.spans()} == {"root", "child"}

    def test_attach_none_is_a_noop(self):
        tracer = _tracer()
        with tracer.attach(None):
            with tracer.span("free"):
                pass
        (span,) = tracer.spans()
        assert span.parent_id is None

    def test_record_stitches_and_clamps(self):
        tracer = _tracer()
        with tracer.span("root") as root:
            pass
        tracer.record(
            "chunk",
            10.0,
            9.0,  # end before start: clamped to zero duration
            parent=root.context,
            attrs={"seeds": 3},
            thread="worker",
        )
        chunk = next(span for span in tracer.spans() if span.name == "chunk")
        assert chunk.parent_id == root.span_id
        assert chunk.end == chunk.start == 10.0
        assert chunk.attrs == {"seeds": 3}
        assert chunk.thread == "worker"


class TestWrapIter:
    def test_wrap_iter_counts_items_and_nests(self):
        tracer = _tracer()
        with tracer.span("root"):
            assert list(tracer.wrap_iter("stream", iter(range(4)))) == [0, 1, 2, 3]
        stream = next(span for span in tracer.spans() if span.name == "stream")
        assert stream.attrs["items"] == 4
        assert stream.parent_id is not None

    def test_wrap_iter_opens_lazily(self):
        tracer = _tracer()
        wrapped = tracer.wrap_iter("stream", iter(range(2)))
        assert tracer.spans() == ()  # nothing consumed, nothing recorded
        list(wrapped)
        assert len(tracer.spans()) == 1


class TestNullTracer:
    def test_null_tracer_is_free_of_observable_effects(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", key="value") as span:
            span.set("ignored", 1)
        assert span.attrs == {}
        assert NULL_TRACER.spans() == ()
        assert NULL_TRACER.current() is None
        NULL_TRACER.record("x", 0.0, 1.0)
        assert NULL_TRACER.spans() == ()

    def test_null_wrap_iter_returns_the_iterator_unchanged(self):
        iterator = iter(range(3))
        assert NULL_TRACER.wrap_iter("stream", iterator) is iterator


class TestAmbientTracer:
    def test_default_is_the_null_tracer(self):
        assert isinstance(get_tracer(), NullTracer)

    def test_use_tracer_scopes_and_restores(self):
        tracer = _tracer()
        before = get_tracer()
        with use_tracer(tracer) as active:
            assert active is tracer
            assert get_tracer() is tracer
        assert get_tracer() is before

    def test_set_tracer_none_restores_the_null_tracer(self):
        tracer = _tracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(None)
        assert isinstance(get_tracer(), NullTracer)
        set_tracer(previous)

    def test_timed_call_times_and_records(self):
        tracer = _tracer()
        with use_tracer(tracer):
            elapsed, result = timed_call("compute", lambda: 41 + 1, flavor="test")
        assert result == 42
        assert elapsed >= 0.0
        (span,) = tracer.spans()
        assert span.name == "compute"
        assert span.attrs == {"flavor": "test"}

    def test_timed_call_works_without_a_recording_tracer(self):
        elapsed, result = timed_call("compute", lambda: "ok")
        assert result == "ok"
        assert elapsed >= 0.0
