"""Tests for Algorithm 2 (all-pairs safe queries) and the reachability join."""

from collections import Counter

import pytest

from repro.baselines.product_bfs import product_bfs_all_pairs
from repro.core.allpairs import (
    AllPairsOptions,
    all_pairs_iter,
    all_pairs_reachability,
    all_pairs_safe_query,
    reachable_pair_groups,
)
from repro.core.pairwise import answer_pairwise_query
from repro.core.query_index import build_query_index
from repro.core.safety import is_safe_query
from repro.datasets.myexperiment import (
    BIOAID_KLEENE_TAG,
    bioaid_specification,
    fork_production_indices,
)
from repro.datasets.paper_example import paper_run
from repro.datasets.runs import generate_fork_heavy_run, generate_run
from repro.datasets.synthetic import generate_synthetic_specification
from repro.labeling.parse_tree import LabelTrie
from repro.workflow.derivation import derive_run


def reachability_oracle(run, l1, l2):
    return product_bfs_all_pairs(run, l1, l2, "_*")


class TestAllPairsReachability:
    def test_example_31_lists(self):
        run = paper_run()
        l1 = ["d:1", "d:2", "e:2"]
        l2 = ["b:1", "b:2"]
        assert all_pairs_reachability(run, l1, l2) == {
            ("d:1", "b:1"),
            ("d:2", "b:1"),
            ("e:2", "b:1"),
        }

    def test_full_cross_product_matches_oracle(self):
        run = paper_run(recursion_depth=4)
        nodes = list(run.node_ids())
        assert all_pairs_reachability(run, nodes, nodes) == reachability_oracle(
            run, nodes, nodes
        )

    def test_partial_lists_match_oracle(self):
        run = derive_run(paper_run().spec, seed=11, target_edges=80)
        l1 = run.node_ids()[::3]
        l2 = run.node_ids()[1::4]
        assert all_pairs_reachability(run, l1, l2) == reachability_oracle(run, l1, l2)

    def test_empty_lists(self):
        run = paper_run()
        assert all_pairs_reachability(run, [], list(run.node_ids())) == set()
        assert all_pairs_reachability(run, list(run.node_ids()), []) == set()

    def test_bioaid_run_matches_oracle(self):
        spec = bioaid_specification()
        run = generate_run(spec, 200, seed=4)
        l1 = run.node_ids()[::4]
        l2 = run.node_ids()[::5]
        assert all_pairs_reachability(run, l1, l2) == reachability_oracle(run, l1, l2)

    def test_groups_only_contain_reachable_pairs(self):
        run = paper_run(recursion_depth=5)
        nodes = list(run.node_ids())
        trie1 = LabelTrie.from_run_nodes(run, nodes)
        trie2 = LabelTrie.from_run_nodes(run, nodes)
        oracle = reachability_oracle(run, nodes, nodes)
        seen = set()
        for group1, group2 in reachable_pair_groups(trie1, trie2, run.spec):
            for u in group1:
                for v in group2:
                    assert (u, v) in oracle
                    assert (u, v) not in seen, "pair emitted twice"
                    seen.add((u, v))
        assert seen == oracle


class TestAllPairsSafeQueries:
    def test_example_31_a_plus(self):
        run = paper_run()
        index = build_query_index(run.spec, "A+")
        l1 = ["d:1", "d:2", "e:2"]
        l2 = ["b:1", "b:2"]
        expected = {("d:1", "b:1"), ("d:2", "b:1"), ("e:2", "b:1")}
        assert all_pairs_safe_query(run, l1, l2, index) == expected

    def test_example_31_single_a(self):
        run = paper_run()
        index = build_query_index(run.spec, "A")
        l1 = ["d:1", "d:2", "e:2"]
        l2 = ["b:1", "b:2"]
        assert all_pairs_safe_query(run, l1, l2, index) == {("d:1", "b:1")}

    def test_s1_and_s2_agree(self):
        run = paper_run(recursion_depth=5)
        index = build_query_index(run.spec, "_* e _*")
        nodes = list(run.node_ids())
        s2 = all_pairs_safe_query(run, nodes, nodes, index)
        s1 = all_pairs_safe_query(
            run, nodes, nodes, index, AllPairsOptions(use_reachability_filter=False)
        )
        assert s1 == s2

    @pytest.mark.parametrize("query", ["_* e _*", "A+", "a+", "c (a|b|A|B|e)* b"])
    def test_oracle_agreement(self, query):
        run = paper_run(recursion_depth=4)
        index = build_query_index(run.spec, query)
        nodes = list(run.node_ids())
        expected = product_bfs_all_pairs(run, nodes, nodes, query)
        assert all_pairs_safe_query(run, nodes, nodes, index) == expected

    def test_kleene_star_on_fork_heavy_run(self):
        spec = bioaid_specification()
        forks = fork_production_indices(spec, BIOAID_KLEENE_TAG)
        run = generate_fork_heavy_run(spec, 220, forks, seed=5)
        query = f"{BIOAID_KLEENE_TAG}*"
        index = build_query_index(spec, query)
        l1 = run.node_ids()[::3]
        l2 = run.node_ids()[::3]
        expected = product_bfs_all_pairs(run, l1, l2, query)
        assert all_pairs_safe_query(run, l1, l2, index) == expected

    def test_synthetic_spec_matches_oracle(self):
        spec = generate_synthetic_specification(200, seed=9)
        run = derive_run(spec, seed=9, target_edges=120)
        l1 = run.node_ids()[::4]
        l2 = run.node_ids()[::4]
        for query in ("_*", "_* op2 _*", "op3*"):
            if not is_safe_query(spec, query):
                continue
            index = build_query_index(spec, query)
            expected = product_bfs_all_pairs(run, l1, l2, query)
            assert all_pairs_safe_query(run, l1, l2, index) == expected


class TestVectorizedDecoding:
    """The group-at-a-time state-vector decode (optRPL-G) and streaming."""

    PER_PAIR_S2 = AllPairsOptions(vectorized=False)

    @pytest.mark.parametrize("query", ["_* e _*", "A+", "a+", "c (a|b|A|B|e)* b", "A"])
    def test_agrees_with_per_pair_and_oracle(self, query):
        run = paper_run(recursion_depth=5)
        index = build_query_index(run.spec, query)
        nodes = list(run.node_ids())
        expected = product_bfs_all_pairs(run, nodes, nodes, query)
        assert all_pairs_safe_query(run, nodes, nodes, index) == expected
        assert (
            all_pairs_safe_query(run, nodes, nodes, index, self.PER_PAIR_S2) == expected
        )

    def test_agrees_on_fork_heavy_run(self):
        spec = bioaid_specification()
        forks = fork_production_indices(spec, BIOAID_KLEENE_TAG)
        run = generate_fork_heavy_run(spec, 220, forks, seed=5)
        query = f"{BIOAID_KLEENE_TAG}*"
        index = build_query_index(spec, query)
        l1 = run.node_ids()[::3]
        l2 = run.node_ids()[::2]
        expected = product_bfs_all_pairs(run, l1, l2, query)
        assert all_pairs_safe_query(run, l1, l2, index) == expected

    def test_streaming_yields_each_pair_once(self):
        run = paper_run(recursion_depth=5)
        index = build_query_index(run.spec, "A+")
        nodes = list(run.node_ids())
        streamed = list(all_pairs_iter(run, nodes, nodes, index))
        assert len(streamed) == len(set(streamed))
        assert set(streamed) == all_pairs_safe_query(run, nodes, nodes, index)

    def test_streaming_is_lazy(self):
        run = paper_run(recursion_depth=5)
        index = build_query_index(run.spec, "_* e _*")
        nodes = list(run.node_ids())
        iterator = all_pairs_iter(run, nodes, nodes, index)
        first = next(iterator)
        assert first in all_pairs_safe_query(run, nodes, nodes, index)

    def test_partial_lists_against_per_pair(self):
        spec = generate_synthetic_specification(150, seed=3, recursion_fraction=0.6)
        run = derive_run(spec, seed=3, target_edges=130)
        l1 = run.node_ids()[::2]
        l2 = run.node_ids()[1::3]
        for query in ("_*", "op1* op2*", "op3*"):
            if not is_safe_query(spec, query):
                continue
            index = build_query_index(spec, query)
            assert all_pairs_safe_query(run, l1, l2, index) == all_pairs_safe_query(
                run, l1, l2, index, self.PER_PAIR_S2
            )


class TestDisjointDecoding:
    """Regression for the 'every reachable pair decoded exactly once'
    contract: duplicated input entries used to re-emit their pairs, which
    re-ran the pairwise decode on pairs that had already *failed* the filter
    (the results-set guard only skipped accepted pairs)."""

    def test_no_pair_decoded_twice_on_recursion_heavy_run(self):
        run = paper_run(recursion_depth=6)
        nodes = list(run.node_ids())
        l1 = nodes + nodes[:5]  # duplicated entries, as a caller may pass
        index = build_query_index(run.spec, "A")

        calls = Counter()

        def counting_filter(u, v):
            calls[(u, v)] += 1
            return answer_pairwise_query(index, run.label_of(u), run.label_of(v))

        result = all_pairs_safe_query(run, l1, nodes, index, pair_filter=counting_filter)
        assert result == all_pairs_safe_query(run, nodes, nodes, index)
        assert calls, "the pair filter was never consulted"
        assert max(calls.values()) == 1, "a pair was decoded more than once"

    def test_duplicated_inputs_do_not_change_answers(self):
        spec = generate_synthetic_specification(150, seed=5, recursion_fraction=0.6)
        run = derive_run(spec, seed=5, target_edges=120)
        nodes = run.node_ids()
        index = build_query_index(spec, "_*")
        expected = all_pairs_safe_query(run, nodes, nodes, index)
        doubled = list(nodes) * 2
        assert all_pairs_safe_query(run, doubled, doubled, index) == expected
        streamed = list(all_pairs_iter(run, doubled, doubled, index))
        assert len(streamed) == len(set(streamed))
        assert set(streamed) == expected
        assert all_pairs_reachability(run, doubled, doubled) == all_pairs_reachability(
            run, nodes, nodes
        )
