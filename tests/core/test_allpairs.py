"""Tests for Algorithm 2 (all-pairs safe queries) and the reachability join."""

import pytest

from repro.baselines.product_bfs import product_bfs_all_pairs
from repro.core.allpairs import (
    AllPairsOptions,
    all_pairs_reachability,
    all_pairs_safe_query,
    reachable_pair_groups,
)
from repro.core.query_index import build_query_index
from repro.core.safety import is_safe_query
from repro.datasets.myexperiment import (
    BIOAID_KLEENE_TAG,
    bioaid_specification,
    fork_production_indices,
)
from repro.datasets.paper_example import paper_run
from repro.datasets.runs import generate_fork_heavy_run, generate_run
from repro.datasets.synthetic import generate_synthetic_specification
from repro.labeling.parse_tree import LabelTrie
from repro.workflow.derivation import derive_run


def reachability_oracle(run, l1, l2):
    return product_bfs_all_pairs(run, l1, l2, "_*")


class TestAllPairsReachability:
    def test_example_31_lists(self):
        run = paper_run()
        l1 = ["d:1", "d:2", "e:2"]
        l2 = ["b:1", "b:2"]
        assert all_pairs_reachability(run, l1, l2) == {
            ("d:1", "b:1"),
            ("d:2", "b:1"),
            ("e:2", "b:1"),
        }

    def test_full_cross_product_matches_oracle(self):
        run = paper_run(recursion_depth=4)
        nodes = list(run.node_ids())
        assert all_pairs_reachability(run, nodes, nodes) == reachability_oracle(
            run, nodes, nodes
        )

    def test_partial_lists_match_oracle(self):
        run = derive_run(paper_run().spec, seed=11, target_edges=80)
        l1 = run.node_ids()[::3]
        l2 = run.node_ids()[1::4]
        assert all_pairs_reachability(run, l1, l2) == reachability_oracle(run, l1, l2)

    def test_empty_lists(self):
        run = paper_run()
        assert all_pairs_reachability(run, [], list(run.node_ids())) == set()
        assert all_pairs_reachability(run, list(run.node_ids()), []) == set()

    def test_bioaid_run_matches_oracle(self):
        spec = bioaid_specification()
        run = generate_run(spec, 200, seed=4)
        l1 = run.node_ids()[::4]
        l2 = run.node_ids()[::5]
        assert all_pairs_reachability(run, l1, l2) == reachability_oracle(run, l1, l2)

    def test_groups_only_contain_reachable_pairs(self):
        run = paper_run(recursion_depth=5)
        nodes = list(run.node_ids())
        trie1 = LabelTrie.from_run_nodes(run, nodes)
        trie2 = LabelTrie.from_run_nodes(run, nodes)
        oracle = reachability_oracle(run, nodes, nodes)
        seen = set()
        for group1, group2 in reachable_pair_groups(trie1, trie2, run.spec):
            for u in group1:
                for v in group2:
                    assert (u, v) in oracle
                    assert (u, v) not in seen, "pair emitted twice"
                    seen.add((u, v))
        assert seen == oracle


class TestAllPairsSafeQueries:
    def test_example_31_a_plus(self):
        run = paper_run()
        index = build_query_index(run.spec, "A+")
        l1 = ["d:1", "d:2", "e:2"]
        l2 = ["b:1", "b:2"]
        expected = {("d:1", "b:1"), ("d:2", "b:1"), ("e:2", "b:1")}
        assert all_pairs_safe_query(run, l1, l2, index) == expected

    def test_example_31_single_a(self):
        run = paper_run()
        index = build_query_index(run.spec, "A")
        l1 = ["d:1", "d:2", "e:2"]
        l2 = ["b:1", "b:2"]
        assert all_pairs_safe_query(run, l1, l2, index) == {("d:1", "b:1")}

    def test_s1_and_s2_agree(self):
        run = paper_run(recursion_depth=5)
        index = build_query_index(run.spec, "_* e _*")
        nodes = list(run.node_ids())
        s2 = all_pairs_safe_query(run, nodes, nodes, index)
        s1 = all_pairs_safe_query(
            run, nodes, nodes, index, AllPairsOptions(use_reachability_filter=False)
        )
        assert s1 == s2

    @pytest.mark.parametrize("query", ["_* e _*", "A+", "a+", "c (a|b|A|B|e)* b"])
    def test_oracle_agreement(self, query):
        run = paper_run(recursion_depth=4)
        index = build_query_index(run.spec, query)
        nodes = list(run.node_ids())
        expected = product_bfs_all_pairs(run, nodes, nodes, query)
        assert all_pairs_safe_query(run, nodes, nodes, index) == expected

    def test_kleene_star_on_fork_heavy_run(self):
        spec = bioaid_specification()
        forks = fork_production_indices(spec, BIOAID_KLEENE_TAG)
        run = generate_fork_heavy_run(spec, 220, forks, seed=5)
        query = f"{BIOAID_KLEENE_TAG}*"
        index = build_query_index(spec, query)
        l1 = run.node_ids()[::3]
        l2 = run.node_ids()[::3]
        expected = product_bfs_all_pairs(run, l1, l2, query)
        assert all_pairs_safe_query(run, l1, l2, index) == expected

    def test_synthetic_spec_matches_oracle(self):
        spec = generate_synthetic_specification(200, seed=9)
        run = derive_run(spec, seed=9, target_edges=120)
        l1 = run.node_ids()[::4]
        l2 = run.node_ids()[::4]
        for query in ("_*", "_* op2 _*", "op3*"):
            if not is_safe_query(spec, query):
                continue
            index = build_query_index(spec, query)
            expected = product_bfs_all_pairs(run, l1, l2, query)
            assert all_pairs_safe_query(run, l1, l2, index) == expected
