"""Tests for the query-intersected specification and fine-grained runs."""

from repro.core.intersection import FineGrainedRun, intersect_specification
from repro.core.pairwise import answer_pairwise_query
from repro.core.query_index import build_query_index
from repro.core.safety import query_dfa
from repro.datasets.paper_example import paper_run, paper_specification


class TestIntersectSpecification:
    def test_port_counts(self):
        spec = paper_specification()
        dfa = query_dfa(spec, "_* e _*")
        fine = intersect_specification(spec, dfa)
        assert fine.state_count == dfa.state_count
        assert len(fine.productions) == len(spec.productions)
        # Production order (and heads) is unchanged — the key property that
        # lets the original labels be reused.
        assert [p.head for p in fine.productions] == [p.head for p in spec.productions]

    def test_atomic_modules_preserve_states(self):
        spec = paper_specification()
        dfa = query_dfa(spec, "_* e _*")
        fine = intersect_specification(spec, dfa)
        w3 = fine.production(2)  # A -> e e
        # Each atomic position has an identity in->out edge per state.
        from repro.core.intersection import Port

        for state in range(dfa.state_count):
            assert Port(0, "out", state) in w3.successors(Port(0, "in", state))

    def test_tag_transitions_follow_the_dfa(self):
        spec = paper_specification()
        dfa = query_dfa(spec, "_* e _*")
        fine = intersect_specification(spec, dfa)
        w3 = fine.production(2)  # A -> e e with an e-tagged edge
        from repro.core.intersection import Port

        accepting = next(iter(dfa.accepting))
        # Reading the e-tagged edge from the start state must reach qf.
        assert Port(1, "in", accepting) in w3.successors(Port(0, "out", dfa.start))


class TestFineGrainedRun:
    """Lemma 3.1: the fine-grained run answers pairwise queries."""

    def test_matches_label_decoding(self):
        run = paper_run(recursion_depth=3)
        spec = run.spec
        for query in ("_* e _*", "A+", "a+"):
            dfa = query_dfa(spec, query)
            fine = FineGrainedRun(run, dfa)
            index = build_query_index(spec, query)
            for u in run.node_ids():
                expected_targets = fine.accepting_targets(u)
                for v in run.node_ids():
                    assert (v in expected_targets) == answer_pairwise_query(
                        index, run.label_of(u), run.label_of(v)
                    )

    def test_pairwise_shortcuts(self):
        run = paper_run()
        dfa = query_dfa(run.spec, "_* e _*")
        fine = FineGrainedRun(run, dfa)
        assert fine.pairwise("c:1", "b:1")
        assert not fine.pairwise("c:1", "b:3")
