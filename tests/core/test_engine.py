"""Tests for the ProvenanceQueryEngine facade."""

import pytest

from repro import ProvenanceQueryEngine, paper_specification
from repro.baselines.product_bfs import product_bfs_all_pairs
from repro.datasets.paper_example import paper_run
from repro.errors import UnsafeQueryError


@pytest.fixture
def engine():
    return ProvenanceQueryEngine(paper_specification())


@pytest.fixture
def run():
    return paper_run(recursion_depth=3)


class TestEngineBasics:
    def test_derive(self, engine):
        run = engine.derive(seed=1, target_edges=60)
        assert run.edge_count >= 60

    def test_safety_methods(self, engine):
        assert engine.is_safe("_* e _*")
        assert not engine.is_safe("e")
        report = engine.safety_report("e")
        assert not report.is_safe

    def test_query_index_is_cached(self, engine):
        first = engine.query_index("_* e _*")
        second = engine.query_index("_*  e  _*")  # same canonical form
        assert first is second

    def test_plan(self, engine):
        assert engine.plan("_* e _*").is_fully_safe
        assert not engine.plan("_* a _*").is_fully_safe

    def test_describe(self, engine):
        engine.query_index("_*")
        assert "1 cached query" in engine.describe()

    def test_describe_counts_only_own_spec_on_a_shared_cache(self, engine):
        from repro.datasets.myexperiment import bioaid_specification

        other = ProvenanceQueryEngine(bioaid_specification(), cache=engine.cache)
        engine.query_index("_*")
        engine.query_index("_* e _*")
        other.query_index("_*")
        assert "2 cached query" in engine.describe()
        assert "1 cached query" in other.describe()


class TestEngineQueries:
    def test_reachable(self, engine, run):
        assert engine.reachable(run, "c:1", "b:1")
        assert not engine.reachable(run, "b:1", "c:1")

    def test_pairwise(self, engine, run):
        assert engine.pairwise(run, "c:1", "b:1", "_* e _*")
        assert not engine.pairwise(run, "c:1", "b:3", "_* e _*")

    def test_pairwise_states_relation(self, engine, run):
        matrix = engine.pairwise_states(run, "c:1", "b:1", "_* e _*")
        index = engine.query_index("_* e _*")
        assert index.accepts(matrix)

    def test_pairwise_unsafe_query_raises(self, engine, run):
        with pytest.raises(UnsafeQueryError):
            engine.pairwise(run, "c:1", "b:1", "e")

    def test_all_pairs_matches_oracle(self, engine, run):
        nodes = list(run.node_ids())
        expected = product_bfs_all_pairs(run, nodes, nodes, "A+")
        assert engine.all_pairs(run, "A+") == expected
        assert engine.all_pairs(run, "A+", use_reachability_filter=False) == expected

    def test_all_pairs_reachability(self, engine, run):
        expected = product_bfs_all_pairs(run, None, None, "_*")
        assert engine.all_pairs_reachability(run) == expected

    def test_evaluate_handles_safe_and_unsafe(self, engine, run):
        safe = engine.evaluate(run, "_* e _*")
        assert safe == product_bfs_all_pairs(run, None, None, "_* e _*")
        unsafe = engine.evaluate(run, "_* a _*")
        assert unsafe == product_bfs_all_pairs(run, None, None, "_* a _*")

    def test_all_pairs_vectorized_toggle(self, engine, run):
        expected = engine.all_pairs(run, "A+")
        assert engine.all_pairs(run, "A+", vectorized=False) == expected

    def test_all_pairs_iter_streams_each_pair_once(self, engine, run):
        streamed = list(engine.all_pairs_iter(run, "A+"))
        assert len(streamed) == len(set(streamed))
        assert set(streamed) == engine.all_pairs(run, "A+")

    def test_all_pairs_iter_unsafe_query_raises(self, engine, run):
        with pytest.raises(UnsafeQueryError):
            engine.all_pairs_iter(run, "e")

    def test_evaluate_iter_handles_safe_and_unsafe(self, engine, run):
        assert set(engine.evaluate_iter(run, "_* e _*")) == engine.evaluate(
            run, "_* e _*"
        )
        assert set(engine.evaluate_iter(run, "_* a _*")) == engine.evaluate(
            run, "_* a _*"
        )

    def test_evaluate_iter_is_lazy_for_safe_queries(self, engine, run):
        iterator = engine.evaluate_iter(run, "_* e _*")
        assert next(iterator) in engine.evaluate(run, "_* e _*")

    def test_evaluate_iter_validates_eagerly(self, engine, run):
        from repro.datasets.myexperiment import bioaid_specification
        from repro.errors import QuerySyntaxError
        from repro.workflow.derivation import derive_run

        with pytest.raises(QuerySyntaxError):
            engine.evaluate_iter(run, "((b")
        foreign = derive_run(bioaid_specification(), seed=0, target_edges=50)
        with pytest.raises(ValueError, match="different specification"):
            engine.evaluate_iter(foreign, "_*")

    def test_run_from_other_spec_rejected(self, engine):
        from repro.datasets.myexperiment import bioaid_specification
        from repro.workflow.derivation import derive_run

        foreign = derive_run(bioaid_specification(), seed=0, target_edges=50)
        with pytest.raises(ValueError, match="different specification"):
            engine.reachable(foreign, foreign.node_ids()[0], foreign.node_ids()[1])
