"""Tests for the safe-query property (Section III-C)."""

from repro.core.safety import analyze_safety, is_safe_query, query_dfa
from repro.datasets.myexperiment import (
    BIOAID_KLEENE_TAG,
    QBLAST_KLEENE_TAG,
    bioaid_specification,
    qblast_specification,
)
from repro.datasets.paper_example import paper_specification
from repro.datasets.synthetic import generate_synthetic_specification
from repro.workflow.simple import chain
from repro.workflow.spec import Production, Specification


class TestPaperExamples:
    """The safety classifications discussed in Section III-C / Example 3.4."""

    def test_r3_is_safe(self):
        assert is_safe_query(paper_specification(), "_* e _*")

    def test_r4_is_not_safe(self):
        assert not is_safe_query(paper_specification(), "e")

    def test_wildcard_a_wildcard_is_not_safe(self):
        # "we cannot tell if the query will be satisfied for (c:1, b:1)":
        # A -> W2 introduces an a-tagged edge, A -> W3 does not.
        assert not is_safe_query(paper_specification(), "_* a _*")

    def test_reachability_is_always_safe(self):
        spec = paper_specification()
        assert is_safe_query(spec, "_*")
        for other in (bioaid_specification(), qblast_specification()):
            assert is_safe_query(other, "_*")

    def test_lambda_matrices_for_r3(self):
        # Example 3.5: B leaves states unchanged, A maps q0 to the accepting
        # state (every execution of A eventually produces an e-tagged edge).
        spec = paper_specification()
        dfa = query_dfa(spec, "_* e _*")
        report = analyze_safety(spec, dfa)
        assert report.is_safe
        accepting = next(iter(dfa.accepting))
        lam_a = report.lambda_of("A")
        lam_b = report.lambda_of("B")
        assert lam_a.get(dfa.start, accepting)
        assert not lam_a.get(dfa.start, dfa.start)
        assert lam_b.get(dfa.start, dfa.start)
        assert not lam_b.get(dfa.start, accepting)

    def test_violation_reports_the_offending_module(self):
        spec = paper_specification()
        report = analyze_safety(spec, query_dfa(spec, "_* a _*"))
        assert not report.is_safe
        assert {violation.module for violation in report.violations} == {"A"}
        assert all(violation.state_pairs() for violation in report.violations)


class TestMoreQueries:
    def test_queries_over_foreign_tags_are_safe_and_empty(self):
        # A tag that never occurs in the specification can never be matched,
        # so every module consistently provides no such path.
        spec = paper_specification()
        assert is_safe_query(spec, "_* nonexistent-tag _*")

    def test_safe_kleene_star_on_recursion_tags(self):
        assert is_safe_query(bioaid_specification(), f"{BIOAID_KLEENE_TAG}*")
        assert is_safe_query(qblast_specification(), f"{QBLAST_KLEENE_TAG}*")

    def test_epsilon_is_safe(self):
        assert is_safe_query(paper_specification(), "~")

    def test_alternation_of_alternatives_can_restore_safety(self):
        # Neither branch alone is safe (each depends on which implementation
        # of A ran), but their union is: every execution of A matches one of
        # them.  The specification below makes this concrete.
        spec = Specification(
            start="S",
            productions=[
                Production("S", chain(["x", "A", "y"])),
                Production("A", chain(["p", "q"], tags=["left"])),
                Production("A", chain(["p", "q"], tags=["right"])),
            ],
        )
        assert not is_safe_query(spec, "_* left _*")
        assert not is_safe_query(spec, "_* right _*")
        assert is_safe_query(spec, "_* (left | right) _*")

    def test_choice_free_specifications_make_everything_safe(self):
        # With exactly one production per module and no recursion, every
        # module has a single execution shape, so any query is safe.
        spec = Specification(
            start="S",
            productions=[
                Production("S", chain(["x", "T", "y"])),
                Production("T", chain(["p", "q"])),
            ],
        )
        for query in ("x", "p q", "_* q _*", "(x | y)*", "p+"):
            assert is_safe_query(spec, query)


class TestSafetyOnGeneratedSpecs:
    def test_ifq_safety_is_decidable_on_big_specs(self):
        spec = generate_synthetic_specification(800, seed=4)
        # Just exercise the checker at scale; the verdict depends on the seed.
        for k_tags in (["op1"], ["op1", "op2", "op3"]):
            query = "_* " + " _* ".join(k_tags) + " _*"
            assert is_safe_query(spec, query) in (True, False)

    def test_report_lambda_defined_for_all_modules_when_safe(self):
        spec = bioaid_specification()
        report = analyze_safety(spec, query_dfa(spec, "_*"))
        assert report.is_safe
        assert set(report.lambdas) == set(spec.modules)
