"""Tests for general-query decomposition (Section IV-B, "Our approach")."""

import pytest

from repro.automata.regex import parse_regex
from repro.baselines.product_bfs import product_bfs_all_pairs
from repro.core.decomposition import evaluate_general_query, plan_decomposition
from repro.core.safety import is_safe_query
from repro.datasets.paper_example import paper_run, paper_specification
from repro.datasets.queries import generate_query_suite
from repro.datasets.synthetic import generate_synthetic_specification
from repro.workflow.derivation import derive_run


class TestPlanning:
    def test_fully_safe_query(self):
        plan = plan_decomposition(paper_specification(), "_* e _*")
        assert plan.is_fully_safe
        assert plan.safe_subtrees == [parse_regex("_* e _*")]

    def test_unsafe_query_keeps_safe_parts(self):
        # "_* a _*" is unsafe as a whole; its subexpressions "_*" and even the
        # bare tag "a" are safe (no execution of A provides a path that is a
        # single a-tagged edge, so "a" is consistently unmatched inside A).
        plan = plan_decomposition(paper_specification(), "_* a _*")
        assert not plan.is_fully_safe
        assert plan.has_safe_parts
        assert parse_regex("_*") in plan.safe_subtrees

    def test_plan_describe(self):
        plan = plan_decomposition(paper_specification(), "_* a _*")
        assert "unsafe" in plan.describe()

    def test_composite_unsafe_query(self):
        # Concatenating a safe Kleene part with an unsafe tag keeps the safe
        # part intact in the plan.
        spec = paper_specification()
        plan = plan_decomposition(spec, "(A)+ . e")
        assert not plan.is_fully_safe
        assert parse_regex("A+") in plan.safe_subtrees


class TestEvaluation:
    def test_safe_query_goes_through_safe_engine(self):
        run = paper_run()
        result = evaluate_general_query(run, "_* e _*")
        expected = product_bfs_all_pairs(run, None, None, "_* e _*")
        assert result == expected

    @pytest.mark.parametrize(
        "query",
        [
            "_* a _*",          # the paper's canonical unsafe query
            "e",                # R4
            "e e",              # unsafe concatenation
            "_* a _* e _*",     # unsafe IFQ
            "(c | e) _*",       # union with unsafe parts
            "a* e",             # unsafe star then tag
        ],
    )
    def test_unsafe_queries_match_oracle(self, query):
        run = paper_run(recursion_depth=3)
        assert not is_safe_query(run.spec, query)
        result = evaluate_general_query(run, query)
        expected = product_bfs_all_pairs(run, None, None, query)
        assert result == expected

    def test_restriction_to_lists(self):
        run = paper_run()
        l1 = ["c:1", "a:1"]
        l2 = ["b:1", "b:3"]
        result = evaluate_general_query(run, "_* a _*", l1, l2)
        expected = product_bfs_all_pairs(run, l1, l2, "_* a _*")
        assert result == expected

    def test_cost_based_routing_does_not_change_answers(self):
        run = paper_run(recursion_depth=3)
        query = "(A)+ . e"
        expected = product_bfs_all_pairs(run, None, None, query)
        routed = evaluate_general_query(run, query, cost_based_routing=True)
        always_labels = evaluate_general_query(run, query, cost_based_routing=False)
        assert routed == always_labels == expected

    def test_precomputed_plan_reuse(self):
        run = paper_run()
        plan = plan_decomposition(run.spec, "_* a _*")
        result = evaluate_general_query(run, "_* a _*", plan=plan)
        assert result == product_bfs_all_pairs(run, None, None, "_* a _*")

    def test_random_queries_on_synthetic_spec(self):
        spec = generate_synthetic_specification(150, seed=13)
        run = derive_run(spec, seed=13, target_edges=100)
        for query in generate_query_suite(spec, count=6, seed=3, depth=2):
            result = evaluate_general_query(run, query)
            expected = product_bfs_all_pairs(run, None, None, query)
            assert result == expected, f"mismatch for {query!r}"
