"""Tests for general-query decomposition (Section IV-B, "Our approach")."""

import pytest

from repro.automata.regex import parse_regex
from repro.baselines.product_bfs import product_bfs_all_pairs
from repro.core.decomposition import (
    evaluate_general_query,
    evaluate_general_query_iter,
    label_routed_subtrees,
    plan_decomposition,
)
from repro.core.safety import is_safe_query
from repro.datasets.paper_example import paper_run, paper_specification
from repro.datasets.queries import generate_query_suite
from repro.datasets.synthetic import generate_synthetic_specification
from repro.workflow.derivation import derive_run

UNSAFE_QUERIES = [
    "_* a _*",          # the paper's canonical unsafe query
    "e",                # R4
    "e e",              # unsafe concatenation
    "_* a _* e _*",     # unsafe IFQ
    "(c | e) _*",       # union with unsafe parts
    "a* e",             # unsafe star then tag
]


class TestPlanning:
    def test_fully_safe_query(self):
        plan = plan_decomposition(paper_specification(), "_* e _*")
        assert plan.is_fully_safe
        assert plan.safe_subtrees == [parse_regex("_* e _*")]

    def test_unsafe_query_keeps_safe_parts(self):
        # "_* a _*" is unsafe as a whole; its subexpressions "_*" and even the
        # bare tag "a" are safe (no execution of A provides a path that is a
        # single a-tagged edge, so "a" is consistently unmatched inside A).
        plan = plan_decomposition(paper_specification(), "_* a _*")
        assert not plan.is_fully_safe
        assert plan.has_safe_parts
        assert parse_regex("_*") in plan.safe_subtrees

    def test_plan_describe(self):
        plan = plan_decomposition(paper_specification(), "_* a _*")
        assert "unsafe" in plan.describe()

    def test_composite_unsafe_query(self):
        # Concatenating a safe Kleene part with an unsafe tag keeps the safe
        # part intact in the plan.
        spec = paper_specification()
        plan = plan_decomposition(spec, "(A)+ . e")
        assert not plan.is_fully_safe
        assert parse_regex("A+") in plan.safe_subtrees


class TestEvaluation:
    def test_safe_query_goes_through_safe_engine(self):
        run = paper_run()
        result = evaluate_general_query(run, "_* e _*")
        expected = product_bfs_all_pairs(run, None, None, "_* e _*")
        assert result == expected

    @pytest.mark.parametrize("query", UNSAFE_QUERIES)
    def test_unsafe_queries_match_oracle(self, query):
        run = paper_run(recursion_depth=3)
        assert not is_safe_query(run.spec, query)
        result = evaluate_general_query(run, query)
        expected = product_bfs_all_pairs(run, None, None, query)
        assert result == expected

    def test_restriction_to_lists(self):
        run = paper_run()
        l1 = ["c:1", "a:1"]
        l2 = ["b:1", "b:3"]
        result = evaluate_general_query(run, "_* a _*", l1, l2)
        expected = product_bfs_all_pairs(run, l1, l2, "_* a _*")
        assert result == expected

    def test_cost_based_routing_does_not_change_answers(self):
        run = paper_run(recursion_depth=3)
        query = "(A)+ . e"
        expected = product_bfs_all_pairs(run, None, None, query)
        routed = evaluate_general_query(run, query, cost_based_routing=True)
        always_labels = evaluate_general_query(run, query, cost_based_routing=False)
        assert routed == always_labels == expected

    def test_precomputed_plan_reuse(self):
        run = paper_run()
        plan = plan_decomposition(run.spec, "_* a _*")
        result = evaluate_general_query(run, "_* a _*", plan=plan)
        assert result == product_bfs_all_pairs(run, None, None, "_* a _*")

    def test_random_queries_on_synthetic_spec(self):
        spec = generate_synthetic_specification(150, seed=13)
        run = derive_run(spec, seed=13, target_edges=100)
        for query in generate_query_suite(spec, count=6, seed=3, depth=2):
            result = evaluate_general_query(run, query)
            expected = product_bfs_all_pairs(run, None, None, query)
            assert result == expected, f"mismatch for {query!r}"


class TestRestrictionPushdown:
    @pytest.mark.parametrize("query", UNSAFE_QUERIES)
    @pytest.mark.parametrize("strategy", ["auto", "frontier", "join"])
    def test_strategies_agree_with_oracle_on_lists(self, query, strategy):
        run = paper_run(recursion_depth=3)
        nodes = list(run.node_ids())
        l1 = nodes[:4]
        l2 = nodes[2:10]
        expected = product_bfs_all_pairs(run, l1, l2, query)
        result = evaluate_general_query(run, query, l1, l2, strategy=strategy)
        assert result == expected

    @pytest.mark.parametrize("query", UNSAFE_QUERIES)
    def test_iter_streams_each_pair_once(self, query):
        run = paper_run(recursion_depth=3)
        nodes = list(run.node_ids())
        l1 = nodes[:5]
        streamed = list(evaluate_general_query_iter(run, query, l1, None))
        assert len(streamed) == len(set(streamed))
        assert set(streamed) == product_bfs_all_pairs(run, l1, None, query)

    def test_duplicate_ids_do_not_duplicate_pairs(self):
        run = paper_run(recursion_depth=2)
        nodes = list(run.node_ids())
        l1 = [nodes[0], nodes[1], nodes[0], nodes[1]]
        l2 = [nodes[2], nodes[2], nodes[3]]
        expected = product_bfs_all_pairs(run, l1, l2, "_* a _*")
        for strategy in ("auto", "frontier", "join"):
            assert evaluate_general_query(run, "_* a _*", l1, l2, strategy=strategy) == expected
        streamed = list(evaluate_general_query_iter(run, "_* a _*", l1, l2))
        assert len(streamed) == len(set(streamed))
        assert set(streamed) == expected

    def test_empty_lists_give_empty_answers(self):
        run = paper_run()
        some = list(run.node_ids())[:3]
        for strategy in ("auto", "frontier", "join"):
            assert evaluate_general_query(run, "_* a _*", [], None, strategy=strategy) == set()
            assert evaluate_general_query(run, "_* a _*", some, [], strategy=strategy) == set()
        assert list(evaluate_general_query_iter(run, "_* a _*", [], [])) == []

    def test_ids_absent_from_run_are_ignored(self):
        # The pre-pushdown evaluator restricted a whole-run relation, so
        # unknown ids silently matched nothing; pushdown keeps that contract.
        run = paper_run()
        ghosts = ["no-such-node", "also-missing"]
        some = list(run.node_ids())[:3]
        for strategy in ("auto", "frontier", "join"):
            assert evaluate_general_query(run, "_* a _*", ghosts, None, strategy=strategy) == set()
            mixed = evaluate_general_query(
                run, "_* a _*", some + ghosts, None, strategy=strategy
            )
            assert mixed == product_bfs_all_pairs(run, some, None, "_* a _*")

    def test_unknown_strategy_rejected(self):
        run = paper_run()
        with pytest.raises(ValueError, match="unknown strategy"):
            evaluate_general_query(run, "_* a _*", strategy="magic")

    def test_engine_rejects_unknown_strategy_even_for_safe_queries(self):
        from repro.core.engine import ProvenanceQueryEngine

        run = paper_run()
        engine = ProvenanceQueryEngine(run.spec)
        with pytest.raises(ValueError, match="unknown strategy"):
            engine.evaluate(run, "_* e _*", strategy="magic")

    def test_push_restrictions_off_restores_old_behaviour(self):
        run = paper_run(recursion_depth=3)
        nodes = list(run.node_ids())
        l1, l2 = nodes[:4], nodes[3:9]
        old = evaluate_general_query(
            run, "_* a _*", l1, l2, strategy="join", push_restrictions=False
        )
        assert old == evaluate_general_query(run, "_* a _*", l1, l2)

    def test_push_restrictions_off_never_routes_auto_to_frontier(self):
        # push_restrictions=False is the pre-pushdown reference point, so the
        # auto router must take the join path (the frontier strategy would
        # build a macro DFA, which lands in the plan's memo).
        run = paper_run(recursion_depth=3)
        plan = plan_decomposition(run.spec, "(A)+ . e")
        evaluate_general_query(
            run, "(A)+ . e", list(run.node_ids())[:2], None,
            plan=plan, push_restrictions=False, cost_based_routing=False,
        )
        assert plan._dfa_memo == {}

    def test_cost_routing_memoized_on_plan(self):
        run = paper_run(recursion_depth=3)
        plan = plan_decomposition(run.spec, "(A)+ . e")
        first = label_routed_subtrees(plan, run)
        memo_size = len(plan._routing_memo)
        assert memo_size > 0
        second = label_routed_subtrees(plan, run)
        assert first == second
        assert len(plan._routing_memo) == memo_size  # second pass hit the memo

    def test_macro_dfa_memoized_on_plan(self):
        run = paper_run(recursion_depth=2)
        plan = plan_decomposition(run.spec, "(A)+ . e")
        evaluate_general_query(run, "(A)+ . e", plan=plan, strategy="frontier",
                               cost_based_routing=False)
        assert len(plan._dfa_memo) == 1
        dfa = next(iter(plan._dfa_memo.values()))
        evaluate_general_query(run, "(A)+ . e", plan=plan, strategy="frontier",
                               cost_based_routing=False)
        assert next(iter(plan._dfa_memo.values())) is dfa


class TestPlanThreadSafety:
    """Cached plans are shared by every thread of a batch fan-out; their
    memos must not lose updates (regression: the memos and the ``mutations``
    counter used to be unsynchronized)."""

    def test_remember_direction_is_atomic_across_threads(self):
        import threading

        plan = plan_decomposition(paper_specification(), "_* a _*")
        threads, per_thread = 8, 100
        barrier = threading.Barrier(threads)

        def hammer(worker: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                plan.remember_direction(f"w{worker}:k{i}", "forward")

        workers = [
            threading.Thread(target=hammer, args=(worker,)) for worker in range(threads)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        # Every write is a distinct key (and the memo bound of 1024 is never
        # hit), so a lock-protected counter sees exactly one bump per write.
        assert plan.mutations == threads * per_thread
        assert len(plan.direction_hints()) == threads * per_thread

    def test_memoized_dfa_builds_once_under_contention(self):
        import threading

        from repro.core.decomposition import warm_frontier_dfa

        spec = paper_specification()
        run = derive_run(spec, seed=11)
        plan = plan_decomposition(spec, "_* a _*")
        threads = 8
        barrier = threading.Barrier(threads)
        results = []

        def warm() -> None:
            barrier.wait()
            results.append(warm_frontier_dfa(plan, run))

        workers = [threading.Thread(target=warm) for _ in range(threads)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        # All threads share the single memoized instance, and the memo
        # recorded exactly one build per distinct key.
        assert len({id(dfa) for dfa in results}) == 1
        assert plan.mutations == len(plan.macro_dfas())
