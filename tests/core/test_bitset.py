"""The packed bitset kernel pinned to its set-based reference.

Every word-parallel operation the packed data path performs — tag/all-edge
relations, join composition, the semi-naive closure, restriction universes,
the product frontier search (with and without macro transitions), and the
fixed-width row serialization shared with store format 2 and the worker
arena — must return exactly what the per-element set machinery returns, on
Hypothesis-generated runs, queries, masks and node lists (including empty
and disjoint ones).  A parametrized end-to-end test additionally holds the
two kernels together through the executor under the thread *and* process
backends.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.automata.boolean_matrix import BooleanMatrix
from repro.automata.dfa import dfa_from_regex
from repro.automata.regex import parse_regex
from repro.core.bitset import (
    PackedAdjacency,
    PackedFrontier,
    PackedRelation,
    bit_indices,
    closure_mask,
    row_byte_width,
    rows_from_bytes,
    rows_to_bytes,
)
from repro.core.exec import ExecutorConfig, build_physical_plan, execute
from repro.core.exec.arena import attach_tables, create_arena, release_arena
from repro.core.intersection import intersect_run
from repro.core.query_index import build_query_index
from repro.core.decomposition import plan_decomposition
from repro.core.relations import (
    all_edge_relation,
    compose,
    evaluate_regex_relation,
    evaluate_regex_relation_packed,
    forward_closure_nodes,
    frontier_search,
    restrict,
    restriction_universe,
    tag_relation,
    transitive_closure,
)
from repro.datasets.paper_example import paper_specification
from repro.datasets.synthetic import generate_synthetic_specification
from repro.obs.metrics import get_registry
from repro.workflow.derivation import derive_run

_SPECS = {
    "paper": paper_specification(),
    "synthetic": generate_synthetic_specification(90, seed=3),
}
_RUNS = {
    name: [derive_run(spec, seed=seed, target_edges=60) for seed in (0, 1)]
    for name, spec in _SPECS.items()
}

_SETTINGS = dict(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.data_too_large]
)


@st.composite
def run_and_lists(draw):
    """A run plus two node lists covering None/empty/duplicate/disjoint."""
    name = draw(st.sampled_from(sorted(_SPECS)))
    run = draw(st.sampled_from(_RUNS[name]))
    nodes = list(run.node_ids())

    def node_list():
        kind = draw(st.integers(0, 4))
        if kind == 0:
            return None
        if kind == 1:
            return []
        if kind == 2:
            return ["node-that-does-not-exist"]
        count = draw(st.integers(1, 8))
        return [nodes[draw(st.integers(0, len(nodes) - 1))] for _ in range(count)]

    return run, node_list(), node_list()


@st.composite
def run_query_lists(draw):
    run, l1, l2 = draw(run_and_lists())
    tags = sorted(run.tags())

    def leaf():
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return "_"
        if choice == 1:
            return "_*"
        return draw(st.sampled_from(tags))

    shape = draw(st.integers(0, 3))
    if shape == 0:
        query = f"{leaf()} . {leaf()}"
    elif shape == 1:
        query = f"({leaf()} | {leaf()})"
    elif shape == 2:
        query = f"({draw(st.sampled_from(tags))})*"
    else:
        query = f"{leaf()} . ({leaf()} | {leaf()})* . {leaf()}"
    return run, query, l1, l2


def _mask_of(run, node_list):
    interner = run.packed.interner
    return None if node_list is None else interner.mask_of(node_list)


# ---------------------------------------------------------------------------
# Row serialization: the layout shared with store format 2 and the arena
# ---------------------------------------------------------------------------


class TestRowSerialization:
    @given(
        st.integers(1, 200).flatmap(
            lambda bits: st.tuples(
                st.just(bits),
                st.lists(st.integers(0, (1 << bits) - 1), max_size=8),
            )
        )
    )
    @settings(**_SETTINGS)
    def test_rows_round_trip_through_word_layout(self, data):
        bits, rows = data
        buffer = rows_to_bytes(rows, bits)
        assert len(buffer) == row_byte_width(bits) * len(rows)
        assert rows_from_bytes(buffer, bits, len(rows)) == rows

    @given(st.integers(0, 130))
    @settings(**_SETTINGS)
    def test_bit_indices_inverts_mask_construction(self, seed):
        indices = sorted({(seed * prime) % 131 for prime in (3, 7, 31, 89)})
        mask = sum(1 << index for index in indices)
        assert bit_indices(mask) == indices

    @given(
        st.integers(0, 70).flatmap(
            lambda size: st.tuples(
                st.just(size),
                st.lists(
                    st.integers(0, max(0, (1 << size) - 1)),
                    min_size=size,
                    max_size=size,
                ),
            )
        )
    )
    @settings(**_SETTINGS)
    def test_store_format2_packed_rows_round_trip(self, data):
        """to_packed/from_packed — the store's on-disk row encoding —
        round-trips matrices across the uint64 word boundary."""
        size, rows = data
        matrix = BooleanMatrix(size, rows)
        assert BooleanMatrix.from_packed(size, matrix.to_packed()) == matrix

    @given(st.integers(1, 60), st.integers(0, 5))
    @settings(**_SETTINGS)
    def test_adjacency_round_trips_through_bytes(self, size, seed):
        edges = [((seed + i * 7) % size, (i * 13) % size) for i in range(size)]
        adjacency = PackedAdjacency.from_edges(size, edges)
        rebuilt = PackedAdjacency.from_bytes(adjacency.to_bytes(), size)
        assert rebuilt.rows == adjacency.rows


# ---------------------------------------------------------------------------
# Relation algebra: packed rows vs per-element sets
# ---------------------------------------------------------------------------


class TestRelationAlgebra:
    @given(run_and_lists())
    @settings(**_SETTINGS)
    def test_tag_and_all_edge_relations_match(self, data):
        run, l1, _ = data
        view = run.packed
        allowed = None if l1 is None else frozenset(l1)
        allowed_mask = _mask_of(run, l1)
        packed_any = PackedRelation.from_adjacency(view.forward.any_tag, allowed_mask)
        assert packed_any.to_pairs(view.interner) == all_edge_relation(run, allowed)
        for tag, adjacency in view.forward.by_tag.items():
            packed = PackedRelation.from_adjacency(adjacency, allowed_mask)
            assert packed.to_pairs(view.interner) == tag_relation(run, tag, allowed)

    @given(run_and_lists())
    @settings(**_SETTINGS)
    def test_join_composition_matches(self, data):
        run, l1, l2 = data
        view = run.packed
        left = tag_relation(run, sorted(run.tags())[0])
        right = all_edge_relation(run, None if l2 is None else frozenset(l2))
        packed = PackedRelation.from_pairs(view.interner, left).compose(
            PackedRelation.from_pairs(view.interner, right)
        )
        assert packed.to_pairs(view.interner) == compose(left, right)

    @given(run_and_lists())
    @settings(**_SETTINGS)
    def test_semi_naive_closure_matches(self, data):
        run, l1, _ = data
        relation = all_edge_relation(run, None if l1 is None else frozenset(l1))
        view = run.packed
        packed = PackedRelation.from_pairs(view.interner, relation).transitive_closure()
        assert packed.to_pairs(view.interner) == transitive_closure(relation)

    @given(run_and_lists())
    @settings(**_SETTINGS)
    def test_restriction_universe_matches_explicit_closures(self, data):
        """The packed wavefront closure behind ``restriction_universe``
        agrees with a per-edge breadth-first reference."""
        run, l1, l2 = data
        universe = restriction_universe(run, l1, l2)

        def brute_closure(seeds, adjacency):
            reached = {seed for seed in seeds if seed in adjacency}
            stack = list(reached)
            while stack:
                node = stack.pop()
                for target, _ in adjacency[node]:
                    if target not in reached:
                        reached.add(target)
                        stack.append(target)
            return reached

        if l1 is None and l2 is None:
            assert universe is None
            return
        expected = None
        if l1 is not None:
            expected = brute_closure(l1, run.successors)
        if l2 is not None:
            backward = brute_closure(l2, run.predecessors)
            expected = backward if expected is None else expected & backward
        assert universe == frozenset(expected)

    @given(run_and_lists())
    @settings(**_SETTINGS)
    def test_closure_mask_matches_forward_closure_nodes(self, data):
        run, l1, _ = data
        seeds = list(run.node_ids())[:3] if l1 is None else l1
        view = run.packed
        mask = closure_mask(view.forward.any_tag, view.interner.mask_of(seeds))
        in_run = [seed for seed in seeds if view.interner.bit_of(seed) is not None]
        assert frozenset(view.interner.nodes_of(mask)) == forward_closure_nodes(
            run, in_run
        )

    @given(run_query_lists())
    @settings(**_SETTINGS)
    def test_regex_evaluation_matches_on_both_kernels(self, data):
        run, query, l1, _ = data
        node = parse_regex(query)
        allowed = None if l1 is None else frozenset(l1)
        assert evaluate_regex_relation_packed(
            run, node, allowed=allowed
        ) == evaluate_regex_relation(run, node, allowed=allowed)


# ---------------------------------------------------------------------------
# The product frontier search, with and without macro transitions
# ---------------------------------------------------------------------------


class TestPackedFrontier:
    @given(run_query_lists())
    @settings(**_SETTINGS)
    def test_frontier_search_matches_set_reference(self, data):
        run, query, l1, seeds = data
        dfa = dfa_from_regex(query, run.tags())
        view = run.packed
        allowed = None if l1 is None else frozenset(l1)
        allowed_mask = (
            view.interner.full_mask if l1 is None else view.interner.mask_of(l1)
        )
        frontier = PackedFrontier(
            view.forward.by_tag,
            dfa,
            allowed=allowed_mask,
            any_tag=view.forward.any_tag,
        )
        for seed in list(run.node_ids())[:5] if seeds is None else seeds:
            expected = frontier_search(run.successors, dfa, seed, allowed=allowed)
            bit = view.interner.bit_of(seed)
            reached = set() if bit is None else set(
                view.interner.nodes_of(frontier.search(bit))
            )
            assert reached == expected

    @given(run_query_lists())
    @settings(**_SETTINGS)
    def test_frontier_search_matches_with_macro_transitions(self, data):
        """One run tag is rerouted through a macro relation: the set search
        expands it via ``macro_successors`` while the packed search gets a
        propagator — both must reach the same accepted nodes."""
        run, query, _, _ = data
        macro_tag = sorted(run.tags())[-1]
        dfa = dfa_from_regex(query, run.tags())
        view = run.packed
        macro_pairs = tag_relation(run, macro_tag)
        expand = {}
        for source, target in macro_pairs:
            expand.setdefault(source, []).append(target)
        adjacency = {
            node: [(t, tag) for t, tag in run.successors[node] if tag != macro_tag]
            for node in run.node_ids()
        }
        by_tag = {
            tag: matrix
            for tag, matrix in view.forward.by_tag.items()
            if tag != macro_tag
        }
        macro_matrix = PackedAdjacency.from_edges(
            len(view.interner),
            (
                (view.interner.index[source], view.interner.index[target])
                for source, target in macro_pairs
            ),
        )
        frontier = PackedFrontier(
            by_tag,
            dfa,
            allowed=view.interner.full_mask,
            macros={macro_tag: macro_matrix},
        )
        for seed in list(run.node_ids())[:5]:
            expected = frontier_search(
                adjacency,
                dfa,
                seed,
                macro_successors={macro_tag: lambda n: expand.get(n, ())},
            )
            reached = set(
                view.interner.nodes_of(frontier.search(view.interner.index[seed]))
            )
            assert reached == expected

    @given(run_and_lists())
    @settings(**_SETTINGS)
    def test_fine_grained_run_packed_twin_matches(self, data):
        run, _, _ = data
        fine = intersect_run(run, dfa_from_regex("_* " + sorted(run.tags())[0], run.tags()))
        for source in list(run.node_ids())[:5]:
            assert fine.accepting_targets_packed(source) == fine.accepting_targets(
                source
            )


# ---------------------------------------------------------------------------
# The worker arena: sparse round-trips and lifecycle accounting
# ---------------------------------------------------------------------------


class TestArena:
    @given(
        st.integers(1, 80).flatmap(
            lambda nodes: st.tuples(
                st.just(nodes),
                st.dictionaries(
                    st.sampled_from(["tag:a", "tag:b", "macro:m", "allowed", "emit"]),
                    st.lists(
                        st.integers(0, (1 << nodes) - 1),
                        min_size=nodes,
                        max_size=nodes,
                    ),
                    max_size=4,
                ),
            )
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_tables_round_trip_through_shared_memory(self, data):
        nodes, tables = data
        layout, segment = create_arena(tables, nodes)
        try:
            attached = attach_tables(layout)
        finally:
            release_arena(segment)
        assert attached == {key: list(rows) for key, rows in tables.items()}

    def test_lifecycle_metrics_stay_balanced(self):
        registry = get_registry()
        created = registry.counter("exec_arena_segments_created_total", "")
        released = registry.counter("exec_arena_segments_released_total", "")
        active = registry.gauge("exec_arena_active_segments", "")
        before = (created.value, released.value, active.value)
        layout, segment = create_arena({"tag:x": [0, 1, 2]}, 3)
        release_arena(segment)
        assert created.value == before[0] + 1
        assert released.value == before[1] + 1
        assert active.value == before[2]

    def test_release_is_idempotent_against_racing_unlink(self):
        layout, segment = create_arena({"allowed": [7]}, 3)
        segment.unlink()
        release_arena(segment)  # must tolerate the already-unlinked file


# ---------------------------------------------------------------------------
# End to end: both kernels, both pool backends
# ---------------------------------------------------------------------------


class TestKernelExecutorEquivalence:
    @pytest.mark.parametrize("kernel", ["packed", "sets"])
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_frontier_matches_reference_on_both_kernels(
        self, kernel, backend
    ):
        run = _RUNS["synthetic"][0]
        tags = sorted(run.tags())
        query = f"_* {tags[0]} _*"
        l1 = list(run.node_ids())
        l2 = l1[:4]
        reference = restrict(
            evaluate_regex_relation(run, parse_regex(query)), l1, l2
        )
        plan = plan_decomposition(run.spec, query)
        physical = build_physical_plan(
            run,
            plan,
            l1,
            l2,
            indexes=lambda node: build_query_index(run.spec, node),
            strategy="frontier",
            executor=ExecutorConfig(workers=2, backend=backend, kernel=kernel),
        )
        assert set(execute(physical)) == set(reference)

    @pytest.mark.parametrize("kernel", ["packed", "sets"])
    def test_join_strategy_matches_reference_on_both_kernels(self, kernel):
        run = _RUNS["paper"][0]
        tags = sorted(run.tags())
        query = f"_* {tags[0]} _*"
        reference = evaluate_regex_relation(run, parse_regex(query))
        plan = plan_decomposition(run.spec, query)
        physical = build_physical_plan(
            run,
            plan,
            None,
            None,
            indexes=lambda node: build_query_index(run.spec, node),
            strategy="join",
            executor=ExecutorConfig(kernel=kernel),
        )
        assert set(execute(physical)) == set(reference)
