"""Tests for the cost-model strategy selector (future-work extension)."""

from repro.automata.regex import parse_regex
from repro.core.optimizer import CostModel, ifq_tags
from repro.datasets.index import EdgeTagIndex
from repro.datasets.paper_example import paper_run


class TestIfqDetection:
    def test_recognizes_ifq_shapes(self):
        assert ifq_tags(parse_regex("_*")) == []
        assert ifq_tags(parse_regex("_* a _*")) == ["a"]
        assert ifq_tags(parse_regex("_* a _* b _*")) == ["a", "b"]

    def test_rejects_non_ifq_shapes(self):
        assert ifq_tags(parse_regex("a")) is None
        assert ifq_tags(parse_regex("a b")) is None
        assert ifq_tags(parse_regex("a*")) is None
        assert ifq_tags(parse_regex("(a | b) _*")) is None
        assert ifq_tags(parse_regex("_* (a b) _*")) is None
        assert ifq_tags(parse_regex("_* a")) is None
        assert ifq_tags(parse_regex("a _*")) is None


class TestRelationEstimates:
    def test_leaf_estimates_are_exact(self):
        from repro.core.optimizer import estimate_relation_size

        run = paper_run(recursion_depth=4)
        assert estimate_relation_size(run, parse_regex("a")) == 4  # four a-tagged edges
        assert estimate_relation_size(run, parse_regex("_")) == run.edge_count
        assert estimate_relation_size(run, parse_regex("~")) == run.node_count

    def test_union_and_concat_estimates(self):
        from repro.core.optimizer import estimate_relation_size

        run = paper_run(recursion_depth=4)
        single = estimate_relation_size(run, parse_regex("a"))
        union = estimate_relation_size(run, parse_regex("a | A"))
        assert union >= single
        concat = estimate_relation_size(run, parse_regex("a . a"))
        assert concat <= single * single

    def test_star_estimate_grows_with_frequency(self):
        from repro.core.optimizer import estimate_relation_size

        run = paper_run(recursion_depth=8)
        rare = estimate_relation_size(run, parse_regex("e*"))
        frequent = estimate_relation_size(run, parse_regex("a*"))
        assert frequent > rare

    def test_join_cost_exceeds_size(self):
        from repro.core.optimizer import estimate_join_cost, estimate_relation_size

        run = paper_run(recursion_depth=6)
        for query in ("a*", "_* a _*", "(a | A)+"):
            node = parse_regex(query)
            assert estimate_join_cost(run, node) >= estimate_relation_size(run, node)

    def test_label_cost_scales_quadratically(self):
        from repro.core.optimizer import estimate_label_all_pairs_cost

        assert estimate_label_all_pairs_cost(200) > 3 * estimate_label_all_pairs_cost(100)


class TestFrontierSearchEstimate:
    """Calibration: the per-source frontier bound shrinks with the pruned
    ``allowed`` universe instead of always charging for the whole run."""

    def test_allowed_universe_shrinks_the_estimate(self):
        from repro.core.optimizer import estimate_frontier_search_cost

        run = paper_run(recursion_depth=6)
        query = parse_regex("_* a _*")
        whole = estimate_frontier_search_cost(run, query, 5)
        assert estimate_frontier_search_cost(run, query, 5, allowed_count=None) == whole
        pruned = estimate_frontier_search_cost(
            run, query, 5, allowed_count=max(1, run.node_count // 10)
        )
        assert 0 < pruned < whole
        # Monotone in the universe size, capped at the whole-run bound.
        assert (
            estimate_frontier_search_cost(run, query, 5, allowed_count=run.node_count)
            == whole
        )
        assert (
            estimate_frontier_search_cost(
                run, query, 5, allowed_count=2 * run.node_count
            )
            <= 2 * whole
        )

    def test_tiny_reachable_region_routes_to_frontier(self):
        from repro.core.optimizer import estimate_frontier_search_cost, estimate_join_cost

        # A near-free restricted query (the fig15 misroute): one source whose
        # reachable region is a handful of nodes must beat the join bound.
        run = paper_run(recursion_depth=8)
        query = parse_regex("(a | b)* . c . _*")
        frontier = estimate_frontier_search_cost(run, query, 1, allowed_count=3)
        assert frontier < estimate_join_cost(run, query)


class TestCostModel:
    def make_model(self):
        run = paper_run(recursion_depth=6)
        return run, CostModel(run.spec, EdgeTagIndex.from_run(run))

    def test_highly_selective_ifq_prefers_g3(self):
        run, model = self.make_model()
        # Tag "e" occurs exactly once per run; the join chain is tiny.
        choice = model.choose(
            "_* e _*", input_pairs=run.node_count**2, run_edges=run.edge_count
        )
        assert choice.strategy == "G3"

    def test_lowly_selective_query_prefers_labels(self):
        run, model = self.make_model()
        # With a tiny candidate set, decoding a handful of pairs beats both
        # the join chain and a run traversal.
        choice = model.choose("_* a _* A _*", input_pairs=4, run_edges=run.edge_count)
        assert choice.strategy in {"optRPL", "decomposition"}

    def test_kleene_star_prefers_labels(self):
        run, model = self.make_model()
        choice = model.choose("a*", input_pairs=100, run_edges=run.edge_count)
        assert choice.strategy in {"optRPL", "decomposition"}

    def test_g3_unavailable_for_non_ifq(self):
        run, model = self.make_model()
        assert model.estimate_g3("a*", input_pairs=10) is None

    def test_zero_count_tag_short_circuits(self):
        run, model = self.make_model()
        estimate = model.estimate_g3("_* nonexistent _*", input_pairs=10)
        assert estimate is not None
        assert estimate.cost == 1.0
