"""Tests for Algorithm 1 (pairwise safe queries) against the product oracle."""

import itertools

import pytest

from repro.baselines.product_bfs import product_bfs_pairwise
from repro.core.pairwise import answer_pairwise_query, pairwise_reach_matrix
from repro.core.query_index import build_query_index
from repro.datasets.myexperiment import (
    BIOAID_KLEENE_TAG,
    bioaid_specification,
    fork_production_indices,
)
from repro.datasets.paper_example import paper_run, paper_specification
from repro.datasets.runs import generate_fork_heavy_run
from repro.errors import LabelError, UnsafeQueryError
from repro.labeling.labels import ProductionStep
from repro.workflow.derivation import derive_run


def assert_pairwise_matches_oracle(run, query, node_ids=None):
    index = build_query_index(run.spec, query)
    nodes = list(node_ids or run.node_ids())
    for u, v in itertools.product(nodes, nodes):
        expected = product_bfs_pairwise(run, u, v, query)
        actual = answer_pairwise_query(index, run.label_of(u), run.label_of(v))
        assert actual == expected, f"{query!r} mismatch for ({u}, {v})"


class TestPaperExample:
    def test_r3_known_answers(self):
        run = paper_run()
        index = build_query_index(run.spec, "_* e _*")
        assert answer_pairwise_query(index, run.label_of("c:1"), run.label_of("b:1"))
        assert not answer_pairwise_query(index, run.label_of("c:1"), run.label_of("b:3"))

    def test_example_31_pairwise(self):
        # R1 = A+ holds for (d:2, b:1); R2 = A does not.
        run = paper_run()
        plus_index = build_query_index(run.spec, "A+")
        single_index = build_query_index(run.spec, "A")
        assert answer_pairwise_query(plus_index, run.label_of("d:2"), run.label_of("b:1"))
        assert not answer_pairwise_query(single_index, run.label_of("d:2"), run.label_of("b:1"))

    @pytest.mark.parametrize(
        "query",
        ["_*", "_* e _*", "A+", "A", "a+", "c _* e _*", "a* ", "(a | A)+", "~", "c (a|b|A|B|e)* b"],
    )
    def test_oracle_agreement_on_safe_queries(self, query):
        run = paper_run(recursion_depth=3)
        if not build_query_index.__module__:  # pragma: no cover - defensive
            pytest.skip()
        from repro.core.safety import is_safe_query

        if not is_safe_query(run.spec, query):
            pytest.skip(f"{query!r} not safe for the paper specification")
        assert_pairwise_matches_oracle(run, query)

    def test_empty_path_semantics(self):
        run = paper_run()
        star_index = build_query_index(run.spec, "A*")
        plus_index = build_query_index(run.spec, "A+")
        label = run.label_of("d:1")
        # The empty path matches A* but not A+.
        assert answer_pairwise_query(star_index, label, label)
        assert not answer_pairwise_query(plus_index, label, label)

    def test_reach_matrix_identity_for_same_node(self):
        run = paper_run()
        index = build_query_index(run.spec, "_* e _*")
        label = run.label_of("a:1")
        assert pairwise_reach_matrix(index, label, label) == index.identity


class TestDeepRecursion:
    def test_long_chain_decodes_match_oracle(self):
        run = paper_run(recursion_depth=12)
        # Pairs across far-apart chain members exercise the cycle powers.
        nodes = [n for n in run.node_ids() if n.startswith(("a", "d", "e"))]
        assert_pairwise_matches_oracle(run, "a+", nodes)
        assert_pairwise_matches_oracle(run, "_* e _*", nodes)

    def test_fork_heavy_bioaid_run(self):
        spec = bioaid_specification()
        forks = fork_production_indices(spec, BIOAID_KLEENE_TAG)
        run = generate_fork_heavy_run(spec, 250, forks, seed=2)
        query = f"{BIOAID_KLEENE_TAG}*"
        index = build_query_index(spec, query)
        distributors = run.nodes_named("f1_fork")
        for u, v in itertools.product(distributors[:12], distributors[:12]):
            expected = product_bfs_pairwise(run, u, v, query)
            actual = answer_pairwise_query(index, run.label_of(u), run.label_of(v))
            assert actual == expected

    def test_random_synthetic_runs(self):
        from repro.core.safety import is_safe_query
        from repro.datasets.synthetic import generate_synthetic_specification

        spec = generate_synthetic_specification(200, seed=7)
        run = derive_run(spec, seed=7, target_edges=150)
        sample = run.node_ids()[::5]
        for query in ("_*", "_* op1 _*", "op1*", "(op1 | op2)+"):
            if is_safe_query(spec, query):
                assert_pairwise_matches_oracle(run, query, sample)


class TestErrors:
    def test_unsafe_query_rejected(self):
        with pytest.raises(UnsafeQueryError):
            build_query_index(paper_specification(), "e")

    def test_prefix_label_rejected(self):
        run = paper_run()
        index = build_query_index(run.spec, "_*")
        label = run.label_of("a:1")
        with pytest.raises(LabelError):
            answer_pairwise_query(index, label[:1], label)

    def test_labels_from_different_runs_of_different_specs_rejected(self):
        run = paper_run()
        index = build_query_index(run.spec, "_*")
        with pytest.raises(LabelError):
            answer_pairwise_query(
                index, run.label_of("c:1"), (ProductionStep(3, 0),)
            )
