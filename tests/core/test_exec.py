"""The executor layer: planner resolution, executors, budget, parallelism.

The load-bearing property test: every physical execution path — forward
frontier, backward frontier, parallel (thread) frontier, ordered merge —
returns exactly the pair set of the join reference on Hypothesis-generated
(specification, run, query, l1, l2) tuples, including empty and disjoint
node lists.  One slower non-Hypothesis test covers the process backend.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.automata.regex import parse_regex
from repro.core.allpairs import AllPairsOptions
from repro.core.decomposition import plan_decomposition
from repro.core.exec import (
    ExecutorConfig,
    FrontierSearchOp,
    LabelDecodeOp,
    RestrictOp,
    WorkerBudget,
    build_physical_plan,
    execute,
    execute_iter,
)
from repro.core.query_index import build_query_index
from repro.core.relations import evaluate_regex_relation, restrict
from repro.datasets.paper_example import paper_specification
from repro.datasets.synthetic import generate_synthetic_specification
from repro.workflow.derivation import derive_run

_SPECS = {
    "paper": paper_specification(),
    "synthetic": generate_synthetic_specification(120, seed=1),
}
_RUNS = {
    name: [derive_run(spec, seed=seed, target_edges=70) for seed in (0, 1)]
    for name, spec in _SPECS.items()
}


def _indexes(spec):
    return lambda node: build_query_index(spec, node)


def _physical(run, query, l1, l2, **kwargs):
    plan = plan_decomposition(run.spec, query)
    kwargs.setdefault("indexes", _indexes(run.spec))
    return build_physical_plan(run, plan, l1, l2, **kwargs)


@st.composite
def spec_run_query_lists(draw):
    """Random runs + queries + node lists covering the pushdown edge cases:
    ``None``, empty lists, duplicates, and lists disjoint from the answer."""
    name = draw(st.sampled_from(sorted(_SPECS)))
    spec = _SPECS[name]
    run = draw(st.sampled_from(_RUNS[name]))
    tags = sorted(spec.tags)

    def leaf():
        choice = draw(st.integers(0, 3))
        if choice == 0:
            return "_"
        if choice == 1:
            return "_*"
        return draw(st.sampled_from(tags))

    shape = draw(st.integers(0, 3))
    if shape == 0:
        query = f"{leaf()} . {leaf()}"
    elif shape == 1:
        query = f"({leaf()} | {leaf()})"
    elif shape == 2:
        query = f"({draw(st.sampled_from(tags))})*"
    else:
        query = f"{leaf()} . ({leaf()} | {leaf()})* . {leaf()}"
    nodes = list(run.node_ids())

    def node_list():
        kind = draw(st.integers(0, 4))
        if kind == 0:
            return None
        if kind == 1:
            return []
        count = draw(st.integers(1, 8))
        return [nodes[draw(st.integers(0, len(nodes) - 1))] for _ in range(count)]

    return run, query, node_list(), node_list()


class TestExecutorEquivalence:
    @given(spec_run_query_lists())
    @settings(
        max_examples=50, deadline=None, suppress_health_check=[HealthCheck.data_too_large]
    )
    def test_all_executors_match_the_join_reference(self, data):
        """Forward, backward, auto-direction, parallel-thread and ordered
        executions all return the join reference's pair set."""
        run, query, l1, l2 = data
        reference = restrict(evaluate_regex_relation(run, parse_regex(query)), l1, l2)
        for label, kwargs in (
            ("forward", {"strategy": "frontier", "direction": "forward"}),
            ("backward", {"strategy": "frontier", "direction": "backward"}),
            ("auto", {}),
            (
                "parallel-thread",
                {
                    "strategy": "frontier",
                    "executor": ExecutorConfig(workers=4, backend="thread"),
                },
            ),
            (
                "parallel-ordered",
                {
                    "strategy": "frontier",
                    "executor": ExecutorConfig(workers=3, backend="thread", ordered=True),
                },
            ),
        ):
            physical = _physical(run, query, l1, l2, **kwargs)
            assert execute(physical) == reference, f"{label} diverged for {query!r}"
            streamed = list(execute_iter(physical))
            assert len(streamed) == len(set(streamed)), f"{label} duplicated pairs"
            assert set(streamed) == reference, f"{label} stream diverged for {query!r}"

    def test_process_backend_matches_serial(self):
        """The process-pool executor (true parallelism) returns the serial
        result — macro relations ship materialized, pairs re-orient."""
        run = _RUNS["paper"][0]
        query = "_* a _*"  # unsafe for the paper grammar, has safe subtrees
        nodes = list(run.node_ids())
        l1, l2 = nodes[::2], nodes[1::3]
        serial = execute(_physical(run, query, l1, l2, strategy="frontier"))
        parallel = set(
            execute_iter(
                _physical(
                    run,
                    query,
                    l1,
                    l2,
                    strategy="frontier",
                    executor=ExecutorConfig(workers=2, backend="process"),
                )
            )
        )
        assert parallel == serial

    def test_backward_execution_crosses_macro_edges(self):
        """Backward searches must follow macro relations against their
        direction; force label routing so a macro edge actually exists."""
        run = _RUNS["paper"][0]
        # Unsafe overall, with '(A | B)+' as a routable maximal safe subtree.
        query = "(e)+ . (A|B)+"
        nodes = list(run.node_ids())
        l1, l2 = nodes, nodes[-3:]
        reference = restrict(evaluate_regex_relation(run, parse_regex(query)), l1, l2)
        physical = _physical(
            run, query, l1, l2,
            strategy="frontier", direction="backward", cost_based_routing=False,
        )
        assert isinstance(physical.root, FrontierSearchOp)
        assert physical.root.macros, "expected a macro-routed safe subtree"
        assert execute(physical) == reference


class TestPlannerResolution:
    def test_fully_safe_plans_to_label_decode(self):
        run = _RUNS["paper"][0]
        physical = _physical(run, "_* e _*", None, None)
        assert isinstance(physical.root, LabelDecodeOp)
        assert physical.strategy == "safe"

    def test_auto_picks_backward_on_small_l2_large_l1(self):
        """The acceptance criterion: a handful of targets against the whole
        run flips the frontier to the reversed-DFA backward search."""
        run = _RUNS["paper"][0]
        nodes = list(run.node_ids())
        physical = _physical(run, "_* a _*", nodes, nodes[:2])
        assert physical.strategy == "frontier"
        assert physical.direction == "backward"
        assert isinstance(physical.root, FrontierSearchOp)
        assert physical.root.direction == "backward"
        assert len(physical.root.seeds) == 2

    def test_auto_picks_forward_on_small_l1_no_l2(self):
        run = _RUNS["paper"][0]
        nodes = list(run.node_ids())
        physical = _physical(run, "_* a _*", nodes[:2], None)
        assert physical.strategy == "frontier"
        assert physical.direction == "forward"

    def test_unrestricted_unsafe_query_plans_to_join(self):
        run = _RUNS["paper"][0]
        physical = _physical(run, "_* a _*", None, None)
        assert isinstance(physical.root, RestrictOp)
        assert physical.strategy == "join"
        assert physical.direction == "-"

    def test_direction_decision_is_memoized_on_the_plan(self):
        run = _RUNS["paper"][0]
        plan = plan_decomposition(run.spec, "_* a _*")
        nodes = list(run.node_ids())
        assert not plan.direction_hints()
        build_physical_plan(
            run, plan, nodes, nodes[:2], indexes=_indexes(run.spec)
        )
        hints = plan.direction_hints()
        assert list(hints.values()) == ["backward"]
        # A second resolution of the same workload shape reuses the memo.
        build_physical_plan(run, plan, nodes, nodes[:2], indexes=_indexes(run.spec))
        assert plan.direction_hints() == hints

    def test_explicit_direction_overrides_executor_config(self):
        run = _RUNS["paper"][0]
        nodes = list(run.node_ids())
        physical = _physical(
            run, "_* a _*", nodes, nodes[:2],
            strategy="frontier",
            direction="forward",
            executor=ExecutorConfig(direction="backward"),
        )
        assert physical.direction == "forward"

    def test_bad_strategy_and_direction_raise(self):
        run = _RUNS["paper"][0]
        with pytest.raises(ValueError, match="unknown strategy"):
            _physical(run, "_* a _*", None, None, strategy="sideways")
        with pytest.raises(ValueError, match="unknown direction"):
            _physical(run, "_* a _*", None, None, direction="sideways")
        with pytest.raises(ValueError, match="unknown direction"):
            ExecutorConfig(direction="sideways")
        with pytest.raises(ValueError, match="workers must be at least 1"):
            ExecutorConfig(workers=0)


class TestWorkerBudget:
    def test_lease_grants_at_most_free_capacity(self):
        budget = WorkerBudget(4)
        with budget.lease(3) as first:
            assert first == 3
            with budget.lease(3) as second:
                assert second == 1  # only one slot free
                assert budget.in_use == 4
        assert budget.in_use == 0

    def test_saturated_budget_still_grants_one(self):
        budget = WorkerBudget(1)
        with budget.lease(1):
            with budget.lease(4) as granted:
                assert granted == 1  # degrade to serial, never block

    def test_saturated_budget_degrades_execution_to_serial(self):
        run = _RUNS["paper"][0]
        nodes = list(run.node_ids())
        budget = WorkerBudget(2)
        reference = execute(_physical(run, "_* a _*", nodes[:6], nodes))
        with budget.lease(2):  # a busy batch holds the whole budget
            config = ExecutorConfig(workers=4, backend="thread", budget=budget)
            physical = _physical(
                run, "_* a _*", nodes[:6], nodes, strategy="frontier", executor=config
            )
            assert set(execute_iter(physical)) == reference

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity must be at least 1"):
            WorkerBudget(0)

    def test_lease_releases_before_the_stream_is_drained(self):
        """A slow consumer must not keep budget slots hostage once every
        search chunk has completed."""
        import time

        run = _RUNS["paper"][0]
        nodes = list(run.node_ids())
        budget = WorkerBudget(4)
        config = ExecutorConfig(workers=4, backend="thread", budget=budget)
        physical = _physical(
            run, "_* a _*", nodes, None, strategy="frontier", executor=config
        )
        stream = execute_iter(physical)
        first = next(stream)  # start execution, drain almost nothing
        assert first
        deadline = time.monotonic() + 10
        while budget.in_use and time.monotonic() < deadline:
            time.sleep(0.01)
        assert budget.in_use == 0, "slots still held after searches finished"
        rest = list(stream)  # the buffered results are all still there
        reference = execute(_physical(run, "_* a _*", nodes, None, strategy="frontier"))
        assert {first, *rest} == reference
        assert budget.in_use == 0


class TestOrderedMerge:
    def test_ordered_merge_groups_pairs_in_seed_order(self):
        run = _RUNS["paper"][0]
        nodes = list(run.node_ids())
        physical = _physical(
            run, "_* a _*", nodes, None,
            strategy="frontier",
            direction="forward",
            executor=ExecutorConfig(workers=4, backend="thread", ordered=True),
        )
        streamed = [source for source, _ in execute_iter(physical)]
        seed_rank = {seed: rank for rank, seed in enumerate(physical.root.seeds)}
        ranks = [seed_rank[source] for source in streamed]
        assert ranks == sorted(ranks), "ordered merge must follow seed order"


class TestPhysicalPlanReporting:
    def test_describe_names_the_choices(self):
        run = _RUNS["paper"][0]
        nodes = list(run.node_ids())
        physical = _physical(run, "_* a _*", nodes, nodes[:2])
        text = physical.describe()
        assert 'frontier' in text
        assert 'backward' in text

    def test_options_flow_through(self):
        run = _RUNS["paper"][0]
        physical = _physical(
            run, "_* a _*", None, None,
            options=AllPairsOptions(use_reachability_filter=False, vectorized=False),
        )
        assert physical.options.use_reachability_filter is False


class TestMacroRelationThreadSafety:
    """The lazily decoded macro relation is shared by every seed search of a
    thread-pool executor (regression: readers used to peek at the half-built
    fields outside the lock instead of working off the materialized maps)."""

    def test_concurrent_readers_decode_once_and_agree(self):
        import threading

        from repro.core.exec.ops import MacroRelation

        pairs = [(f"s{i}", f"t{i % 3}") for i in range(30)]
        decodes = []

        def decode():
            decodes.append(1)
            return list(pairs)

        relation = MacroRelation(decode)
        threads = 8
        barrier = threading.Barrier(threads)
        seen = []

        def read(worker: int) -> None:
            barrier.wait()
            if worker % 2:
                seen.append(("succ", relation.successors("s1")))
            else:
                seen.append(("pred", relation.predecessors("t1")))

        workers = [
            threading.Thread(target=read, args=(worker,)) for worker in range(threads)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        assert len(decodes) == 1  # one shared materialization
        for kind, result in seen:
            if kind == "succ":
                assert result == ("t1",)
            else:
                assert set(result) == {f"s{i}" for i in range(30) if i % 3 == 1}
