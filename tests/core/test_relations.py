"""Tests for the restriction-pushdown primitives of :mod:`repro.core.relations`."""

from repro.automata.regex import parse_regex
from repro.baselines.product_bfs import product_dfa
from repro.core.relations import (
    backward_closure_nodes,
    evaluate_regex_relation,
    forward_closure_nodes,
    product_frontier_targets,
    restrict,
    restriction_universe,
)
from repro.datasets.paper_example import paper_run


class TestClosures:
    def test_forward_closure_includes_seeds(self):
        run = paper_run()
        seed = run.node_ids()[0]
        closure = forward_closure_nodes(run, [seed])
        assert seed in closure
        assert closure == run.reachable_from(seed) | {seed}

    def test_backward_closure_inverts_forward(self):
        run = paper_run()
        nodes = run.node_ids()
        for target in nodes[:6]:
            backward = backward_closure_nodes(run, [target])
            for source in nodes:
                assert (source in backward) == (
                    target in forward_closure_nodes(run, [source])
                )

    def test_unknown_seed_ids_are_dropped(self):
        run = paper_run()
        assert forward_closure_nodes(run, ["no-such-node"]) == frozenset()
        assert backward_closure_nodes(run, ["no-such-node"]) == frozenset()

    def test_restriction_universe(self):
        run = paper_run()
        nodes = run.node_ids()
        assert restriction_universe(run, None, None) is None
        assert restriction_universe(run, [nodes[0]], None) == forward_closure_nodes(
            run, [nodes[0]]
        )
        assert restriction_universe(run, None, [nodes[-1]]) == backward_closure_nodes(
            run, [nodes[-1]]
        )
        both = restriction_universe(run, [nodes[0]], [nodes[-1]])
        assert both == forward_closure_nodes(run, [nodes[0]]) & backward_closure_nodes(
            run, [nodes[-1]]
        )


class TestAllowedPruning:
    def test_relation_stays_inside_allowed(self):
        run = paper_run(recursion_depth=3)
        source = run.node_ids()[0]
        allowed = forward_closure_nodes(run, [source])
        for query in ("_*", "_* a _*", "(c | e) _*", "a* e"):
            relation = evaluate_regex_relation(run, parse_regex(query), allowed=allowed)
            assert all(u in allowed and v in allowed for u, v in relation)

    def test_allowed_pruning_preserves_restricted_answers(self):
        run = paper_run(recursion_depth=3)
        l1 = list(run.node_ids())[:4]
        l2 = list(run.node_ids())[2:10]
        allowed = restriction_universe(run, l1, l2)
        for query in ("_*", "_* a _*", "e e", "a* e"):
            node = parse_regex(query)
            full = restrict(evaluate_regex_relation(run, node), l1, l2)
            pruned = restrict(evaluate_regex_relation(run, node, allowed=allowed), l1, l2)
            assert full == pruned


class TestFrontierSearch:
    def test_matches_unpruned_search(self):
        run = paper_run(recursion_depth=3)
        dfa = product_dfa(run, "_* a _*")
        targets = set(run.node_ids())
        for source in run.node_ids():
            hits = product_frontier_targets(run, dfa, source)
            allowed = forward_closure_nodes(run, [source])
            pruned = product_frontier_targets(run, dfa, source, allowed=allowed)
            assert hits <= targets
            assert pruned == hits  # forward closure never cuts real answers

    def test_unknown_or_disallowed_source_is_empty(self):
        run = paper_run()
        dfa = product_dfa(run, "_*")
        assert product_frontier_targets(run, dfa, "no-such-node") == set()
        some = run.node_ids()[0]
        assert product_frontier_targets(run, dfa, some, allowed=frozenset()) == set()

    def test_nullable_query_accepts_source_itself(self):
        run = paper_run()
        dfa = product_dfa(run, "_*")
        source = run.node_ids()[0]
        assert source in product_frontier_targets(run, dfa, source)

    def test_macro_transitions_follow_supplied_relation(self):
        run = paper_run(recursion_depth=2)
        # A DFA for the single macro symbol M: exactly one macro edge.
        from repro.automata.dfa import determinize
        from repro.automata.nfa import nfa_from_regex
        from repro.automata.regex import Symbol

        macro = "\x00M"
        dfa = determinize(nfa_from_regex(Symbol(macro)), set(run.tags()) | {macro},
                          wildcard_tags=set(run.tags()))
        relation = {}
        nodes = list(run.node_ids())
        relation[nodes[0]] = (nodes[3], nodes[4])
        hits = product_frontier_targets(
            run, dfa, nodes[0],
            macro_successors={macro: lambda node: relation.get(node, ())},
        )
        assert hits == {nodes[3], nodes[4]}
