# repro-lint-module: fixtures.rep102_good
"""REP102 exhibit: module-level task functions, plain-data arguments."""

from concurrent.futures import ProcessPoolExecutor


def run_chunk(chunk):
    return chunk


def run(chunks):
    pool = ProcessPoolExecutor(max_workers=2)
    # A thread pool received as an argument may submit anything.
    return [pool.submit(run_chunk, chunk) for chunk in chunks]


def run_with_foreign_pool(pool, work):
    return pool.submit(lambda: work)  # fine: not a pool created in this scope
