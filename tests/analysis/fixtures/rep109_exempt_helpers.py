# repro-lint-module: fixtures.rep109_exempt_helpers
"""Helpers for the ``# effect-exempt:`` fixtures.

``sanctioned_now`` mirrors ``repro.obs.clock.now``: the clock read sits on a
line carrying the directive, so the effect scanner waives it.  The other two
prove the directive's limits: ``unsanctioned_now`` has no directive and
``mislabeled_now`` waives the *wrong* effect — both keep their clock effect.
"""

import time


def sanctioned_now() -> float:
    return time.perf_counter()  # effect-exempt: clock


def unsanctioned_now() -> float:
    return time.perf_counter()  # the carve-out does not apply here


def mislabeled_now() -> float:
    return time.perf_counter()  # effect-exempt: randomness
