# repro-lint-module: fixtures.rep109_planner
"""REP109 clean twin: the planner times itself only through the sanctioned
wrapper, whose clock read carries ``# effect-exempt: clock``."""

from fixtures.rep109_exempt_helpers import sanctioned_now


def plan_budget(nodes: list) -> float:
    return sanctioned_now() + float(len(nodes))
