# repro-lint-module: fixtures.rep109_helpers
"""Helpers for the REP109 fixtures: one impure, one pure."""

import time


def stamp() -> float:
    return time.time()  # clock effect: planners must not reach this


def canonical(nodes: list) -> list:
    return sorted(nodes)
