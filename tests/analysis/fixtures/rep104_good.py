# repro-lint-module: repro.core.example
"""REP104 exhibit: narrow catches, and broad-catch-then-reraise cleanup."""


class ReproError(Exception):
    pass


def load(path: object) -> int:
    try:
        return int(path.read_text())
    except (OSError, ValueError):  # specific: fine
        return 0


def guarded(callback: object, release: object) -> object:
    try:
        return callback()
    except Exception:  # broad but pure cleanup: fine
        release()
        raise


def translate(callback: object) -> object:
    try:
        return callback()
    except ReproError:  # project error taxonomy: fine
        return None
