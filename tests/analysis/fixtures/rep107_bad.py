# repro-lint-module: repro.fixtures.rep107_bad
"""REP107 exhibit: functions missing parameter and return annotations."""


def count_pairs(pairs, limit=None):  # BAD: nothing annotated
    return len(pairs[:limit])


class Index:
    def add(self, node, tag: str):  # BAD: 'node' and return missing
        return (node, tag)
