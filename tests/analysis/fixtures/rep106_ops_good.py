# repro-lint-module: repro.core.exec.ops
"""REP106 exhibit: every operator is unioned, exported and dispatched."""

__all__ = ["JoinOp", "PhysicalOp", "ScanOp"]


class ScanOp:
    pass


class JoinOp:
    pass


PhysicalOp = ScanOp | JoinOp
