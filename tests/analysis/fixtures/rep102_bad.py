# repro-lint-module: fixtures.rep102_bad
"""REP102 exhibit: unpicklable callables handed to a process pool."""

from concurrent.futures import ProcessPoolExecutor


class Search:
    def run_chunk(self, chunk):
        return chunk


def run(chunks):
    search = Search()
    pool = ProcessPoolExecutor(max_workers=2, initializer=lambda: None)  # BAD
    futures = [pool.submit(lambda: chunk) for chunk in chunks]  # BAD: lambda

    def local_task(chunk):
        return chunk

    futures.append(pool.submit(local_task, chunks))  # BAD: nested function
    futures.append(pool.submit(search.run_chunk, chunks))  # BAD: bound method
    return futures
