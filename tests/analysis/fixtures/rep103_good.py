# repro-lint-module: repro.core.optimizer
"""REP103 exhibit: planning as a pure function of its inputs."""

_THRESHOLD = 16  # immutable module constant: fine


def choose_direction(source_count, target_count):
    if target_count and target_count * 4 <= source_count:
        return "backward"
    return "forward"


def plan_cost(edge_count, seed_count):
    return edge_count * max(seed_count, 1) / _THRESHOLD
