# repro-lint-module: repro.core.exec.executor
"""REP106 companion: an executor dispatching ScanOp and JoinOp only."""

from fixtures.ops import JoinOp, ScanOp  # noqa: F401 - fixture, never imported


def execute(op):
    if isinstance(op, ScanOp):
        return ()
    if isinstance(op, JoinOp):
        return ()
    raise TypeError(op)
