# repro-lint-module: fixtures.rep101_bad
"""REP101 exhibit: guarded attributes touched outside their lock."""

import threading


class Counter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: _lock
        self._entries = {}  # guarded-by: _lock

    def bump(self) -> None:
        self._count += 1  # BAD: no lock held

    def peek(self) -> int:
        return self._count  # BAD: unlocked read

    def locked_total(self) -> int:
        with self._lock:
            total = self._count
        return total + len(self._entries)  # BAD: read escaped the with-block
