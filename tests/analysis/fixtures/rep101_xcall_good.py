# repro-lint-module: fixtures.rep101_xcall_good
"""Caller-aware REP101 clean twin: every caller of the ``# holds-lock:``
helper really holds the lock."""

import threading


class Registry:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items = {}  # guarded-by: _lock

    def add(self, key: str) -> None:
        with self._lock:
            self._insert(key)

    def add_many(self, keys: list) -> None:
        with self._lock:
            for key in keys:
                self._insert(key)

    def _insert(self, key: str) -> None:  # holds-lock: _lock
        self._items[key] = True
