# repro-lint-module: fixtures.rep105_bad
"""REP105 exhibit: streaming functions that buffer the whole answer."""


def search_iter(run):
    yield from run


def stream_pairs(run):
    pairs = search_iter(run)
    for pair in sorted(pairs):  # BAD: materializes the stream to sort it
        yield pair


def frontier_iter(run):
    return list(search_iter(run))  # BAD: result-sized buffer in a *_iter
