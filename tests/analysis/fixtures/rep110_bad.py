"""REP110 broken fixture: shared-memory segments whose lifecycle leaks."""

from multiprocessing import shared_memory


def happy_path_only_close() -> bytes:
    # close() is unreachable if the buf write raises, and the created
    # segment is never unlink()ed at all.
    segment = shared_memory.SharedMemory(name="rep110", create=True, size=16)
    segment.buf[0:4] = b"abcd"
    data = bytes(segment.buf[0:4])
    segment.close()
    return data


def attach_without_close(name: str) -> int:
    segment = shared_memory.SharedMemory(name=name)
    return segment.size


def fire_and_forget(name: str) -> None:
    shared_memory.SharedMemory(name=name, create=True, size=8)
