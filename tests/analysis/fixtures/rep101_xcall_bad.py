# repro-lint-module: fixtures.rep101_xcall_bad
"""Caller-aware REP101 exhibit: a ``# holds-lock:`` callee invoked without
the lock.  The module-local rule cannot see this — only the call graph can."""

import threading


class Registry:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items = {}  # guarded-by: _lock

    def add(self, key: str) -> None:
        with self._lock:
            self._insert(key)

    def add_fast(self, key: str) -> None:
        self._insert(key)  # BAD: the annotation promises the lock is held

    def _insert(self, key: str) -> None:  # holds-lock: _lock
        self._items[key] = True
