# repro-lint-module: fixtures.rep108_bad
"""REP108 exhibit: two locks acquired in opposite orders across classes."""

import threading


class A:
    def __init__(self) -> None:
        self._lock_a = threading.Lock()

    def one(self, b: "B") -> None:
        with self._lock_a:  # A then B
            b.two()

    def four(self) -> None:
        with self._lock_a:
            pass


class B:
    def __init__(self) -> None:
        self._lock_b = threading.Lock()

    def two(self) -> None:
        with self._lock_b:
            pass

    def three(self, a: "A") -> None:
        with self._lock_b:  # BAD: B then A — cycle with A.one
            a.four()
