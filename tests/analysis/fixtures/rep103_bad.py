# repro-lint-module: repro.core.optimizer
"""REP103 exhibit: a planner module leaking ambient state into plans."""

import os
import random  # BAD: nondeterministic import
from time import monotonic  # BAD: clock import

_PLAN_CACHE = {}


def choose_direction(seed_count):
    if os.environ.get("REPRO_FORCE_BACKWARD"):  # BAD: environment read
        return "backward"
    started = monotonic()
    _PLAN_CACHE[seed_count] = started  # BAD: module-level mutation
    return "forward" if random.random() < 0.5 else "backward"


def reset_cache():
    global _PLAN_CACHE  # BAD: global statement
    _PLAN_CACHE = {}


def persist(path):
    with open(path, "w") as handle:  # BAD: file IO in a planner
        handle.write("plan")
