# repro-lint-module: repro.fixtures.rep107_good
"""REP107 exhibit: fully annotated functions, *args/**kwargs included."""


def count_pairs(pairs: list[tuple[str, str]], limit: int | None = None) -> int:
    return len(pairs[:limit])


class Index:
    def add(self, node: str, tag: str, *extra: str, **options: bool) -> tuple[str, str]:
        return (node, tag)

    @classmethod
    def empty(cls) -> "Index":
        return cls()
