"""REP110 clean fixture: guarded lifecycles and whole-segment hand-offs."""

from multiprocessing import shared_memory


def guarded_create() -> bytes:
    segment = shared_memory.SharedMemory(name="rep110", create=True, size=16)
    try:
        segment.buf[0:4] = b"abcd"
        return bytes(segment.buf[0:4])
    finally:
        segment.close()
        segment.unlink()


def guarded_attach(name: str) -> int:
    segment = shared_memory.SharedMemory(name=name)
    try:
        return segment.size
    finally:
        segment.close()


def create_for_caller() -> shared_memory.SharedMemory:
    # Ownership (and with it the close/unlink duty) passes to the caller.
    segment = shared_memory.SharedMemory(name="owned", create=True, size=8)
    return segment


def create_then_delegate(register: object) -> None:
    segment = shared_memory.SharedMemory(name="tracked", create=True, size=8)
    track(register, segment)


def track(register: object, segment: shared_memory.SharedMemory) -> None:
    del register, segment
