# repro-lint-module: fixtures.rep109_planner
"""REP109 clean twin: the planner only reaches pure helpers."""

from fixtures.rep109_helpers import canonical


def plan_order(nodes: list) -> list:
    return canonical(nodes)
