# repro-lint-module: fixtures.rep109_planner
"""REP109 exhibit: the planner reaches a clock read the ``# effect-exempt:``
directive does not sanction (no directive on one path, a directive naming
the wrong effect on the other)."""

from fixtures.rep109_exempt_helpers import mislabeled_now, unsanctioned_now


def plan_budget(nodes: list) -> float:
    return unsanctioned_now() + float(len(nodes))


def plan_deadline(nodes: list) -> float:
    return mislabeled_now() + float(len(nodes))
