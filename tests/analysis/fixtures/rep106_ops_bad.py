# repro-lint-module: repro.core.exec.ops
"""REP106 exhibit: GhostOp exists but is wired into nothing."""

__all__ = ["PhysicalOp", "ScanOp"]


class ScanOp:
    pass


class GhostOp:  # BAD: not in the union, not exported, not dispatched
    pass


PhysicalOp = ScanOp
