# repro-lint-module: repro.core.example
"""REP104 exhibit: broad handlers swallowing bugs outside a boundary."""


def load(path: object) -> int:
    try:
        return int(path.read_text())
    except Exception:  # BAD: swallows everything, returns a default
        return 0


def probe(callback: object) -> object:
    try:
        return callback()
    except BaseException:  # BAD: even broader
        return None
