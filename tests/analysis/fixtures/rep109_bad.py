# repro-lint-module: fixtures.rep109_planner
"""REP109 exhibit: a planner whose helper reaches the clock.

No *direct* impurity here — REP103 stays silent — but the call graph shows
``plan_order`` reaching ``time.time`` through ``stamp``.
"""

from fixtures.rep109_helpers import stamp


def plan_order(nodes: list) -> list:
    marker = stamp()  # BAD: plans become functions of the wall clock
    return sorted(nodes, key=lambda node: (str(node), marker))
