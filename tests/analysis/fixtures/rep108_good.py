# repro-lint-module: fixtures.rep108_good
"""REP108 clean twin: every path acquires the locks in the same order."""

import threading


class A:
    def __init__(self) -> None:
        self._lock_a = threading.Lock()

    def one(self, b: "B") -> None:
        with self._lock_a:  # A then B, everywhere
            b.two()

    def four(self) -> None:
        with self._lock_a:
            pass


class B:
    def __init__(self) -> None:
        self._lock_b = threading.Lock()

    def two(self) -> None:
        with self._lock_b:
            pass

    def three(self, a: "A") -> None:
        a.four()  # acquire A's lock first ...
        with self._lock_b:  # ... and B's only after A's is released
            pass
