# repro-lint-module: fixtures.rep101_good
"""REP101 exhibit: every guarded access is under the lock (or declared)."""

import threading


class Counter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: _lock
        self._entries = {}  # guarded-by: _lock

    def bump(self) -> None:
        with self._lock:
            self._count += 1

    def peek(self) -> int:
        with self._lock:
            return self._count

    def _evict(self) -> None:  # holds-lock: _lock
        self._entries.clear()

    def reset(self) -> None:
        with self._lock:
            self._count = 0
            self._evict()
