# repro-lint-module: fixtures.rep105_good
"""REP105 exhibit: streaming paths stay lazy; eager APIs may materialize."""


def search_iter(run):
    yield from run


def stream_pairs(run):
    seen = set()  # bounded dedup state, not a materialized stream: fine
    for pair in search_iter(run):
        if pair not in seen:
            seen.add(pair)
            yield pair


def collect(run):
    # Not a streaming function: materializing here is the eager API's job.
    return sorted(search_iter(run))
