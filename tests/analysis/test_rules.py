"""Per-rule tests: every rule flags its broken fixture and passes its clean
twin.  Fixtures live in ``fixtures/`` and use the ``# repro-lint-module:``
directive to claim the logical names module-scoped rules key on."""

from pathlib import Path

import pytest

from repro.analysis import AnalysisConfig, all_rules, rule_ids, run_analysis

FIXTURES = Path(__file__).parent / "fixtures"


def lint(rule_id: str, *names: str, config: AnalysisConfig | None = None):
    rules = [rule for rule in all_rules() if rule.id == rule_id]
    assert rules, f"unknown rule {rule_id}"
    return run_analysis(
        [FIXTURES / name for name in names],
        root=FIXTURES,
        config=config,
        rules=rules,
    )


class TestCatalog:
    def test_at_least_six_project_rules(self):
        assert len(rule_ids()) >= 6

    def test_rule_metadata_is_complete(self):
        for rule in all_rules():
            assert rule.id.startswith("REP")
            assert rule.name
            assert rule.description

    def test_findings_are_sorted_and_carry_position(self):
        findings = lint("REP101", "rep101_bad.py")
        assert findings == sorted(findings)
        for finding in findings:
            assert finding.path == "rep101_bad.py"
            assert finding.line > 0
            assert finding.rule == "REP101"


class TestLockDiscipline:
    def test_bad_fixture_flags_every_unlocked_access(self):
        findings = lint("REP101", "rep101_bad.py")
        lines = [finding.line for finding in findings]
        assert len(findings) == 3
        assert "read of '_count'" in findings[1].message
        assert "write to '_count'" in findings[0].message or (
            "read of '_count'" in findings[0].message
        )
        # the read that escaped the with-block is the subtle one
        assert any("_entries" in finding.message for finding in findings)
        assert lines == sorted(lines)

    def test_good_fixture_is_clean(self):
        assert lint("REP101", "rep101_good.py") == []


class TestPicklableSubmit:
    def test_bad_fixture_flags_lambda_nested_and_bound(self):
        findings = lint("REP102", "rep102_bad.py")
        messages = " | ".join(finding.message for finding in findings)
        assert len(findings) == 4
        assert "lambda" in messages
        assert "nested function 'local_task'" in messages
        assert "bound method or attribute" in messages
        assert "initializer" in messages

    def test_good_fixture_is_clean(self):
        assert lint("REP102", "rep102_good.py") == []


class TestPlannerDeterminism:
    def test_bad_fixture_flags_each_impurity(self):
        findings = lint("REP103", "rep103_bad.py")
        messages = " | ".join(finding.message for finding in findings)
        assert "nondeterministic module 'random'" in messages
        assert "nondeterministic module 'time'" in messages
        assert "os.environ" in messages
        assert "global _PLAN_CACHE" in messages
        assert "file IO" in messages
        assert "subscript write to module-level '_PLAN_CACHE'" in messages

    def test_good_fixture_is_clean(self):
        assert lint("REP103", "rep103_good.py") == []

    def test_rule_only_applies_to_planner_modules(self):
        # Same broken source, but without the planner logical name.
        config = AnalysisConfig(determinism_modules=frozenset({"somewhere.else"}))
        assert lint("REP103", "rep103_bad.py", config=config) == []


class TestBroadExcept:
    def test_bad_fixture_flags_broad_handlers(self):
        findings = lint("REP104", "rep104_bad.py")
        assert len(findings) == 2
        assert "'except Exception'" in findings[0].message
        assert "'except BaseException'" in findings[1].message

    def test_good_fixture_allows_cleanup_reraise_and_narrow(self):
        assert lint("REP104", "rep104_good.py") == []

    def test_boundary_modules_are_exempt(self):
        config = AnalysisConfig(
            boundary_modules=frozenset({"repro.core.example"})
        )
        assert lint("REP104", "rep104_bad.py", config=config) == []


class TestStreamingDiscipline:
    def test_bad_fixture_flags_materialized_streams(self):
        findings = lint("REP105", "rep105_bad.py")
        assert len(findings) == 2
        assert "'sorted(...)'" in findings[0].message
        assert "stream_pairs" in findings[0].message
        assert "'list(...)'" in findings[1].message
        assert "frontier_iter" in findings[1].message

    def test_good_fixture_is_clean(self):
        assert lint("REP105", "rep105_good.py") == []


class TestOperatorProtocol:
    def test_ghost_operator_flagged_three_ways(self):
        findings = lint("REP106", "rep106_ops_bad.py", "rep106_executor.py")
        messages = [finding.message for finding in findings]
        assert len(findings) == 3
        assert any("missing from the PhysicalOp union" in m for m in messages)
        assert any("missing from __all__" in m for m in messages)
        assert any("not dispatched" in m for m in messages)
        assert all("GhostOp" in m for m in messages)

    def test_complete_catalog_is_clean(self):
        assert lint("REP106", "rep106_ops_good.py", "rep106_executor.py") == []


class TestTypedDefs:
    def test_bad_fixture_names_each_missing_annotation(self):
        findings = lint("REP107", "rep107_bad.py")
        assert len(findings) == 2
        assert "parameter 'pairs'" in findings[0].message
        assert "return type" in findings[0].message
        assert "parameter 'node'" in findings[1].message
        assert "'tag'" not in findings[1].message

    def test_good_fixture_is_clean(self):
        assert lint("REP107", "rep107_good.py") == []

    def test_rule_ignores_modules_outside_the_typed_prefix(self):
        config = AnalysisConfig(typed_prefix="otherpkg.")
        assert lint("REP107", "rep107_bad.py", config=config) == []


class TestCallerAwareLockDiscipline:
    """The project-level arm of REP101: a ``# holds-lock:`` callee must be
    invoked with the lock held at every call site."""

    def test_unlocked_call_site_is_flagged(self):
        findings = lint("REP101", "rep101_xcall_bad.py")
        assert len(findings) == 1
        assert "Registry._insert" in findings[0].message
        assert "add_fast" in findings[0].message
        assert "without holding '_lock'" in findings[0].message

    def test_locked_call_sites_are_clean(self):
        assert lint("REP101", "rep101_xcall_good.py") == []


class TestLockOrder:
    def test_opposite_orders_report_a_cycle_with_both_witnesses(self):
        findings = lint("REP108", "rep108_bad.py")
        assert len(findings) == 1
        message = findings[0].message
        assert "lock-order cycle" in message
        assert "A._lock_a" in message and "B._lock_b" in message
        # both halves of the cycle are spelled out as acquisition paths
        assert "A.one" in message and "B.three" in message

    def test_consistent_order_is_clean(self):
        assert lint("REP108", "rep108_good.py") == []


class TestPlannerPurity:
    CONFIG = AnalysisConfig(
        determinism_modules=frozenset({"fixtures.rep109_planner"})
    )

    def test_transitive_clock_reach_is_flagged_with_its_path(self):
        findings = lint(
            "REP109", "rep109_bad.py", "rep109_helpers.py", config=self.CONFIG
        )
        assert len(findings) == 1
        message = findings[0].message
        assert "plan_order" in message
        assert "'clock'" in message
        assert "stamp" in message  # the witness chain names the helper

    def test_direct_rule_misses_what_the_reachability_rule_sees(self):
        # REP103 scans syntax; the impurity hides behind a call.
        assert lint("REP103", "rep109_bad.py", config=self.CONFIG) == []

    def test_pure_helper_chain_is_clean(self):
        findings = lint(
            "REP109", "rep109_good.py", "rep109_helpers.py", config=self.CONFIG
        )
        assert findings == []


class TestEffectExemptDirective:
    """The ``# effect-exempt:`` carve-out behind ``repro.obs.clock``: the
    directive waives exactly the named effect on its own line, so every
    unsanctioned clock read stays a REP109 finding."""

    CONFIG = AnalysisConfig(
        determinism_modules=frozenset({"fixtures.rep109_planner"})
    )

    def test_sanctioned_wrapper_is_clean(self):
        findings = lint(
            "REP109",
            "rep109_exempt_good.py",
            "rep109_exempt_helpers.py",
            config=self.CONFIG,
        )
        assert findings == []

    def test_unsanctioned_and_mislabeled_clock_reads_still_fail(self):
        findings = lint(
            "REP109",
            "rep109_exempt_bad.py",
            "rep109_exempt_helpers.py",
            config=self.CONFIG,
        )
        messages = " | ".join(finding.message for finding in findings)
        assert len(findings) == 2
        assert "'clock'" in messages
        assert "unsanctioned_now" in messages  # no directive at all
        assert "mislabeled_now" in messages  # directive naming another effect


class TestSharedMemoryLifecycle:
    def test_bad_fixture_flags_each_leak(self):
        findings = lint("REP110", "rep110_bad.py")
        messages = " | ".join(finding.message for finding in findings)
        assert len(findings) == 4
        assert "never unlink()ed" in messages
        assert "only close()d on the happy path" in messages
        assert "never close()d" in messages
        assert "never bound to a name" in messages

    def test_good_fixture_allows_guards_and_handoffs(self):
        assert lint("REP110", "rep110_good.py") == []


class TestRepositoryIsClean:
    """The tree itself must hold the invariants the rules encode."""

    @pytest.mark.parametrize(
        "rule_id",
        [
            "REP101",
            "REP102",
            "REP103",
            "REP104",
            "REP105",
            "REP106",
            "REP107",
            "REP108",
            "REP109",
            "REP110",
        ],
    )
    def test_src_repro_has_no_findings(self, rule_id):
        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        rules = [rule for rule in all_rules() if rule.id == rule_id]
        assert run_analysis([src], root=src.parent.parent, rules=rules) == []
