"""The whole-program semantic layer: call graph, lock-order graph, effect
inference, and the digest-keyed model cache — on fixtures with known shapes
and on the real tree (which must stay deadlock-free and planner-pure)."""

from pathlib import Path

import pytest

from repro.analysis.project import load_project
from repro.analysis.semantic import (
    build_call_graph,
    build_semantic_model,
    load_cached_model,
    project_digest,
    save_model,
)

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def project(*names: str):
    return load_project([FIXTURES / name for name in names], root=FIXTURES)


class TestCallGraph:
    def test_method_calls_resolve_through_annotations(self):
        graph = build_call_graph(project("rep108_bad.py"))
        edges = {(site.caller, site.callee) for site in graph.calls}
        assert (
            "fixtures.rep108_bad:A.one",
            "fixtures.rep108_bad:B.two",
        ) in edges
        assert (
            "fixtures.rep108_bad:B.three",
            "fixtures.rep108_bad:A.four",
        ) in edges

    def test_cross_module_imports_resolve(self):
        graph = build_call_graph(project("rep109_bad.py", "rep109_helpers.py"))
        edges = {(site.caller, site.callee) for site in graph.calls}
        assert (
            "fixtures.rep109_planner:plan_order",
            "fixtures.rep109_helpers:stamp",
        ) in edges

    def test_call_sites_carry_their_lock_context(self):
        graph = build_call_graph(project("rep101_xcall_bad.py"))
        sites = {
            site.caller: site
            for site in graph.calls
            if site.callee == "fixtures.rep101_xcall_bad:Registry._insert"
        }
        add = sites["fixtures.rep101_xcall_bad:Registry.add"]
        fast = sites["fixtures.rep101_xcall_bad:Registry.add_fast"]
        assert "_lock" in add.bare_held
        assert "_lock" not in fast.bare_held

    def test_holds_lock_annotations_are_read(self):
        graph = build_call_graph(project("rep101_xcall_bad.py"))
        info = graph.functions["fixtures.rep101_xcall_bad:Registry._insert"]
        assert tuple(info.holds_locks) == ("_lock",)

    def test_guarded_classes_are_collected_for_the_sanitizer(self):
        graph = build_call_graph(project("rep101_xcall_bad.py"))
        guarded = graph.guarded_classes["fixtures.rep101_xcall_bad:Registry"]
        assert guarded.guards == {"_items": "_lock"}


class TestLockGraph:
    def test_opposite_orders_make_a_cycle(self):
        model = build_semantic_model(project("rep108_bad.py"))
        assert not model.lock_graph.acyclic
        assert [list(cycle) for cycle in model.lock_graph.cycles] == [
            ["A._lock_a", "B._lock_b"]
        ]

    def test_consistent_order_is_acyclic_with_one_edge(self):
        model = build_semantic_model(project("rep108_good.py"))
        assert model.lock_graph.acyclic
        edges = {(edge.source, edge.target) for edge in model.lock_graph.edges}
        assert edges == {("A._lock_a", "B._lock_b")}

    def test_edges_carry_a_human_readable_witness(self):
        model = build_semantic_model(project("rep108_good.py"))
        (edge,) = model.lock_graph.edges
        assert "A.one" in edge.witness
        assert "acquires" in edge.witness or "calls" in edge.witness


class TestEffects:
    def test_clock_effect_propagates_along_calls(self):
        model = build_semantic_model(project("rep109_bad.py", "rep109_helpers.py"))
        planner = "fixtures.rep109_planner:plan_order"
        helper = "fixtures.rep109_helpers:stamp"
        assert "clock" in model.direct_effects[helper]
        assert "clock" not in model.direct_effects[planner]
        assert "clock" in model.effects[planner]

    def test_witness_names_the_shortest_path(self):
        model = build_semantic_model(project("rep109_bad.py", "rep109_helpers.py"))
        witness = model.witness("fixtures.rep109_planner:plan_order", "clock")
        assert witness == [
            "fixtures.rep109_planner:plan_order",
            "fixtures.rep109_helpers:stamp",
        ]

    def test_pure_chain_has_no_effects(self):
        model = build_semantic_model(project("rep109_good.py", "rep109_helpers.py"))
        assert model.effects["fixtures.rep109_planner:plan_order"] == frozenset()


class TestModelCache:
    def test_roundtrip_preserves_graphs_and_effects(self, tmp_path):
        loaded_project = project("rep108_bad.py", "rep109_helpers.py")
        model = build_semantic_model(loaded_project)
        cache = tmp_path / "model.json"
        save_model(model, cache)
        reloaded = load_cached_model(cache, loaded_project)
        assert reloaded is not None
        assert reloaded.digest == model.digest
        assert reloaded.effects == model.effects
        assert reloaded.lock_graph == model.lock_graph
        assert set(reloaded.graph.functions) == set(model.graph.functions)

    def test_source_change_invalidates_the_cache(self, tmp_path):
        loaded_project = project("rep108_bad.py")
        save_model(build_semantic_model(loaded_project), tmp_path / "model.json")
        other = project("rep108_good.py")
        assert project_digest(other) != project_digest(loaded_project)
        assert load_cached_model(tmp_path / "model.json", other) is None

    def test_corrupt_cache_is_ignored(self, tmp_path):
        loaded_project = project("rep108_bad.py")
        cache = tmp_path / "model.json"
        cache.write_text("{not json")
        assert load_cached_model(cache, loaded_project) is None


class TestRealTree:
    """The acceptance bar: the repository's own lock graph stays acyclic and
    its planners stay pure."""

    @pytest.fixture(scope="class")
    def model(self):
        return build_semantic_model(load_project([SRC], root=SRC.parent.parent))

    def test_lock_graph_is_acyclic(self, model):
        assert model.lock_graph.acyclic, model.lock_graph.cycles

    def test_known_lock_hierarchy_is_present(self, model):
        edges = {(edge.source, edge.target) for edge in model.lock_graph.edges}
        assert ("IndexCache._build_locks", "IndexCache._lock") in edges
        assert ("IndexStore.entry_lock", "IndexStore._lock") in edges

    def test_planner_modules_reach_no_impure_effect(self, model):
        planners = {
            "repro.core.decomposition",
            "repro.core.optimizer",
            "repro.core.exec.plan",
        }
        impure = {
            qualified: effects
            for qualified, effects in model.effects.items()
            if effects and model.graph.functions[qualified].module in planners
        }
        assert impure == {}

    def test_every_graph_dimension_is_populated(self, model):
        assert model.graph.modules > 50
        assert len(model.graph.functions) > 500
        assert len(model.graph.calls) > 1000
        assert len(model.lock_graph.locks) >= 8
