"""The `repro analyze` subcommand and `repro lint --statistics`: views,
exit codes, JSON shapes, and the semantic cache shared between the two."""

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
CYCLIC = str(FIXTURES / "rep108_bad.py")
ORDERED = str(FIXTURES / "rep108_good.py")
PLANNER = str(FIXTURES / "rep109_bad.py")
HELPERS = str(FIXTURES / "rep109_helpers.py")


def analyze_json(capsys, *argv):
    code = main(["analyze", *argv, "--json"])
    return code, json.loads(capsys.readouterr().out)


class TestLockGraphView:
    def test_cycle_exits_nonzero_and_is_reported(self, capsys):
        code, payload = analyze_json(capsys, "lock-graph", CYCLIC)
        assert code == 1
        assert payload["acyclic"] is False
        assert payload["cycles"] == [["A._lock_a", "B._lock_b"]]

    def test_acyclic_graph_exits_zero(self, capsys):
        code, payload = analyze_json(capsys, "lock-graph", ORDERED)
        assert code == 0
        assert payload["acyclic"] is True
        assert payload["locks"] == {"A._lock_a": "lock", "B._lock_b": "lock"}
        (edge,) = payload["edges"]
        assert edge["source"] == "A._lock_a"
        assert edge["target"] == "B._lock_b"
        assert "A.one" in edge["witness"]

    def test_human_output_names_edges_and_cycles(self, capsys):
        assert main(["analyze", "lock-graph", CYCLIC]) == 1
        out = capsys.readouterr().out
        assert "CYCLE: A._lock_a -> B._lock_b -> A._lock_a" in out

    def test_dot_output_is_a_digraph(self, capsys):
        assert main(["analyze", "lock-graph", ORDERED, "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph lockorder {")
        assert '"A._lock_a" -> "B._lock_b";' in out
        assert out.rstrip().endswith("}")


class TestCallGraphView:
    def test_json_lists_functions_and_calls(self, capsys):
        code, payload = analyze_json(capsys, "call-graph", PLANNER, HELPERS)
        assert code == 0
        names = {entry["qualified"] for entry in payload["functions"]}
        assert "fixtures.rep109_planner:plan_order" in names
        calls = {(c["caller"], c["callee"]) for c in payload["calls"]}
        assert (
            "fixtures.rep109_planner:plan_order",
            "fixtures.rep109_helpers:stamp",
        ) in calls
        assert payload["summary"]["functions"] == len(payload["functions"])

    def test_dot_output_draws_the_edge(self, capsys):
        assert main(["analyze", "call-graph", PLANNER, HELPERS, "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph callgraph {")
        assert (
            '"fixtures.rep109_planner:plan_order" -> '
            '"fixtures.rep109_helpers:stamp";' in out
        )


class TestEffectsView:
    def test_json_reports_transitive_effects(self, capsys):
        code, payload = analyze_json(capsys, "effects", PLANNER, HELPERS)
        assert code == 0
        functions = payload["functions"]
        assert functions["fixtures.rep109_planner:plan_order"] == ["clock"]
        assert functions["fixtures.rep109_helpers:stamp"] == ["clock"]
        assert payload["summary"]["by_effect"]["clock"] == 2

    def test_human_output_lists_impure_functions(self, capsys):
        assert main(["analyze", "effects", PLANNER, HELPERS]) == 0
        out = capsys.readouterr().out
        assert "fixtures.rep109_planner:plan_order: clock" in out


class TestSemanticCache:
    def test_analyze_writes_and_lint_reuses_the_cache(self, tmp_path, capsys):
        cache = tmp_path / "semantic.json"
        assert main(
            ["analyze", "lock-graph", ORDERED, "--semantic-cache", str(cache)]
        ) == 0
        assert cache.exists()
        first = json.loads(cache.read_text())
        assert main(
            [
                "lint",
                ORDERED,
                "--baseline",
                str(tmp_path / "b.json"),
                "--semantic-cache",
                str(cache),
            ]
        ) == 0
        # lint reused the model instead of rebuilding: the file is untouched
        assert json.loads(cache.read_text()) == first

    def test_stale_cache_is_rebuilt(self, tmp_path, capsys):
        cache = tmp_path / "semantic.json"
        assert main(
            ["analyze", "lock-graph", ORDERED, "--semantic-cache", str(cache)]
        ) == 0
        stale = json.loads(cache.read_text())
        assert main(
            ["analyze", "lock-graph", CYCLIC, "--semantic-cache", str(cache)]
        ) == 1
        rebuilt = json.loads(cache.read_text())
        assert rebuilt["digest"] != stale["digest"]


class TestLintStatistics:
    def test_statistics_key_appears_only_when_requested(self, tmp_path, capsys):
        baseline = str(tmp_path / "b.json")
        main(["lint", ORDERED, "--baseline", baseline, "--json"])
        plain = json.loads(capsys.readouterr().out)
        assert "statistics" not in plain

        main(["lint", ORDERED, "--baseline", baseline, "--json", "--statistics"])
        payload = json.loads(capsys.readouterr().out)
        stats = payload["statistics"]
        assert stats["modules"] == 1
        assert stats["functions"] == 6
        assert stats["lock_cycles"] == 0
        assert stats["rule_findings"]["REP108"] == 0

    def test_human_statistics_summarize_the_graphs(self, tmp_path, capsys):
        main(["lint", CYCLIC, "--baseline", str(tmp_path / "b.json"), "--statistics"])
        out = capsys.readouterr().out
        assert "analyzed 1 module(s)" in out
        assert "cycles: 1" in out
        assert "REP108=1" in out
