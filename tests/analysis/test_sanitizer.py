"""The runtime lockset sanitizer: tracked locks, guarded-attribute checks,
the construction exemption, and discovery over the installed package."""

import threading

import pytest

from repro.analysis.runtime import TrackedLock, TrackedRLock, get_sanitizer


@pytest.fixture
def sanitizer():
    """The process-wide sanitizer, activated for the test.

    Under ``pytest --repro-sanitize`` the session already owns the
    activation; only deactivate what this fixture itself activated, so the
    session-level instrumentation survives this module.
    """
    instance = get_sanitizer()
    owned = not instance.active
    if owned:
        instance.activate()
    try:
        yield instance
    finally:
        if owned:
            instance.deactivate()
            instance.reset()


class TestTrackedLocks:
    def test_lock_knows_its_owner(self):
        lock = TrackedLock()
        assert not lock.held_by_current_thread()
        with lock:
            assert lock.held_by_current_thread()
            assert lock.locked()
        assert not lock.held_by_current_thread()

    def test_other_threads_holding_do_not_count(self):
        lock = TrackedLock()
        entered = threading.Event()
        release = threading.Event()

        def holder():
            with lock:
                entered.set()
                release.wait(timeout=5)

        thread = threading.Thread(target=holder)
        thread.start()
        assert entered.wait(timeout=5)
        try:
            assert lock.locked()
            assert not lock.held_by_current_thread()
        finally:
            release.set()
            thread.join(timeout=5)

    def test_rlock_is_reentrant(self):
        lock = TrackedRLock()
        with lock:
            with lock:
                assert lock.held_by_current_thread()
            assert lock.held_by_current_thread()
        assert not lock.held_by_current_thread()

    def test_patched_factory_tracks_repro_callers_only(self, sanitizer):
        from repro.core.exec.config import WorkerBudget

        budget = WorkerBudget(2)
        assert isinstance(budget._lock, TrackedLock)
        # this test module is not part of the repro package: raw primitive
        assert not isinstance(threading.Lock(), TrackedLock)


class TestGuardedWrites:
    def test_seeded_unguarded_write_is_caught(self, sanitizer):
        from repro.core.exec.config import WorkerBudget

        budget = WorkerBudget(4)
        with sanitizer.capture() as caught:
            budget._in_use = 1  # seeded violation: no lock held
        assert len(caught) == 1
        violation = caught[0]
        assert violation.attribute == "_in_use"
        assert violation.lock == "_lock"
        assert "WorkerBudget" in violation.cls
        assert "unguarded write" in violation.describe()

    def test_write_under_the_declared_lock_is_clean(self, sanitizer):
        from repro.core.exec.config import WorkerBudget

        budget = WorkerBudget(4)
        with sanitizer.capture() as caught:
            with budget._lock:
                budget._in_use = 1
        assert caught == []

    def test_the_real_code_paths_are_clean(self, sanitizer):
        from repro.core.exec.config import WorkerBudget

        budget = WorkerBudget(4)
        with sanitizer.capture() as caught:
            granted = budget.acquire(3)
            budget.release(granted)
        assert caught == []

    def test_init_writes_are_exempt(self, sanitizer):
        from repro.core.exec.config import WorkerBudget

        with sanitizer.capture() as caught:
            WorkerBudget(4)  # __init__ writes _in_use without the lock
        assert caught == []

    def test_unguarded_write_from_worker_thread_is_attributed(self, sanitizer):
        from repro.core.exec.config import WorkerBudget

        budget = WorkerBudget(4)
        with sanitizer.capture() as caught:
            thread = threading.Thread(
                target=lambda: setattr(budget, "_in_use", 2), name="rogue"
            )
            thread.start()
            thread.join(timeout=5)
        assert len(caught) == 1
        assert caught[0].thread == "rogue"


class TestLifecycle:
    def test_discovery_instruments_the_guarded_classes(self, sanitizer):
        assert "repro.core.exec.config.WorkerBudget" in sanitizer.guarded
        assert "repro.service.cache.IndexCache" in sanitizer.guarded
        assert len(sanitizer.guarded) >= 5

    def test_deactivate_restores_threading_and_setattr(self):
        instance = get_sanitizer()
        was_active = instance.active
        if not was_active:
            instance.activate()
        instance.deactivate()
        try:
            assert not isinstance(threading.Lock(), TrackedLock)

            from repro.core.exec.config import WorkerBudget

            budget = WorkerBudget(4)
            before = len(instance.violations)
            budget._in_use = 1  # no longer checked
            assert len(instance.violations) == before
        finally:
            if was_active:
                instance.activate()  # hand the session its sanitizer back

    def test_violations_never_raise(self, sanitizer):
        from repro.core.exec.config import WorkerBudget

        budget = WorkerBudget(4)
        with sanitizer.capture() as caught:
            budget._in_use = 3  # records, does not raise
        assert budget._in_use == 3
        assert len(caught) == 1
