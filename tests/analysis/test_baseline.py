"""Baseline ratchet semantics: suppress exactly, surface new, report stale."""

import json
from pathlib import Path

from repro.analysis import all_rules, run_analysis
from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding

FIXTURES = Path(__file__).parent / "fixtures"


def bad_findings():
    rules = [rule for rule in all_rules() if rule.id == "REP104"]
    return run_analysis([FIXTURES / "rep104_bad.py"], root=FIXTURES, rules=rules)


class TestFingerprints:
    def test_fingerprint_ignores_line_numbers(self):
        a = Finding(path="m.py", line=10, rule="REP104", message="broad")
        b = Finding(path="m.py", line=99, rule="REP104", message="broad")
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_depends_on_rule_path_and_message(self):
        base = Finding(path="m.py", line=1, rule="REP104", message="broad")
        for other in (
            Finding(path="n.py", line=1, rule="REP104", message="broad"),
            Finding(path="m.py", line=1, rule="REP105", message="broad"),
            Finding(path="m.py", line=1, rule="REP104", message="other"),
        ):
            assert other.fingerprint != base.fingerprint


class TestBaselineApply:
    def test_baseline_suppresses_exactly_its_findings(self):
        findings = bad_findings()
        assert findings
        baseline = Baseline.from_findings(findings)
        delta = baseline.apply(findings)
        assert delta.clean
        assert delta.new == []
        assert delta.suppressed == findings
        assert delta.stale == {}

    def test_extra_occurrence_beyond_count_is_new(self):
        findings = bad_findings()
        baseline = Baseline.from_findings(findings)
        duplicated = findings + [findings[0]]
        delta = baseline.apply(duplicated)
        assert [f.fingerprint for f in delta.new] == [findings[0].fingerprint]
        assert not delta.clean

    def test_fixed_finding_reports_stale_debt(self):
        findings = bad_findings()
        baseline = Baseline.from_findings(findings)
        remaining = findings[1:]
        delta = baseline.apply(remaining)
        assert delta.clean  # fixing debt never fails the run
        assert delta.stale == {findings[0].fingerprint: 1}

    def test_empty_baseline_marks_everything_new(self):
        findings = bad_findings()
        delta = Baseline().apply(findings)
        assert delta.new == findings
        assert delta.suppressed == []


class TestBaselineFile:
    def test_round_trip(self, tmp_path):
        findings = bad_findings()
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).dump(path)
        loaded = Baseline.load(path)
        assert loaded.apply(findings).clean

    def test_missing_file_is_an_empty_baseline(self, tmp_path):
        assert Baseline.load(tmp_path / "absent.json").counts == {}

    def test_file_format_is_versioned_and_reviewable(self, tmp_path):
        findings = bad_findings()
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).dump(path)
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert payload["tool"] == "repro lint"
        for entry in payload["findings"].values():
            assert entry["count"] >= 1
            assert "REP104" in entry["description"]

    def test_committed_baseline_matches_current_tree(self):
        """The repo baseline accepts the tree as-is: zero new findings."""
        root = Path(__file__).resolve().parents[2]
        findings = run_analysis([root / "src" / "repro"], root=root)
        baseline = Baseline.load(root / "lint-baseline.json")
        delta = baseline.apply(findings)
        assert delta.new == []
        assert delta.stale == {}
