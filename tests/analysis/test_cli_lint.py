"""The `repro lint` subcommand: exit codes, --json schema stability, the
--update-baseline flow, and rule selection."""

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
BAD = str(FIXTURES / "rep104_bad.py")
GOOD = str(FIXTURES / "rep104_good.py")


def lint_json(capsys, *argv):
    code = main(["lint", *argv, "--json"])
    return code, json.loads(capsys.readouterr().out)


class TestExitCodes:
    def test_new_findings_fail(self, tmp_path):
        assert main(["lint", BAD, "--baseline", str(tmp_path / "b.json")]) == 1

    def test_clean_tree_passes(self, tmp_path, capsys):
        assert main(["lint", GOOD, "--baseline", str(tmp_path / "b.json")]) == 0
        assert "0 new" in capsys.readouterr().out

    def test_human_output_names_file_line_and_rule(self, tmp_path, capsys):
        main(["lint", BAD, "--baseline", str(tmp_path / "b.json")])
        out = capsys.readouterr().out
        assert "rep104_bad.py:8: REP104:" in out


class TestJsonSchema:
    """The --json payload is consumed by CI; its shape is a contract."""

    def test_payload_shape_is_stable(self, tmp_path, capsys):
        code, payload = lint_json(
            capsys, BAD, "--baseline", str(tmp_path / "b.json")
        )
        assert code == 1
        assert sorted(payload) == ["findings", "rules", "stale", "summary", "version"]
        assert payload["version"] == 1
        assert "REP104" in payload["rules"]
        assert sorted(payload["summary"]) == ["new", "stale", "suppressed", "total"]
        assert payload["summary"]["total"] == payload["summary"]["new"] == 2
        for finding in payload["findings"]:
            assert sorted(finding) == [
                "fingerprint", "line", "message", "path", "rule", "status",
            ]
            assert finding["status"] == "new"

    def test_baselined_findings_keep_status(self, tmp_path, capsys):
        baseline = tmp_path / "b.json"
        main(["lint", BAD, "--baseline", str(baseline), "--update-baseline"])
        capsys.readouterr()
        code, payload = lint_json(capsys, BAD, "--baseline", str(baseline))
        assert code == 0
        assert payload["summary"]["new"] == 0
        assert payload["summary"]["suppressed"] == 2
        assert {f["status"] for f in payload["findings"]} == {"baselined"}

    def test_output_is_deterministic(self, tmp_path, capsys):
        first = lint_json(capsys, BAD, "--baseline", str(tmp_path / "b.json"))
        second = lint_json(capsys, BAD, "--baseline", str(tmp_path / "b.json"))
        assert first == second


class TestUpdateBaseline:
    def test_update_then_lint_is_clean_and_fix_reports_stale(
        self, tmp_path, capsys
    ):
        baseline = tmp_path / "b.json"
        assert main(["lint", BAD, "--baseline", str(baseline), "--update-baseline"]) == 0
        assert baseline.exists()
        capsys.readouterr()

        assert main(["lint", BAD, "--baseline", str(baseline)]) == 0
        assert "2 baselined" in capsys.readouterr().out

        # "Fixing" the findings (linting the clean twin) passes and nudges
        # toward tightening the baseline.
        assert main(["lint", GOOD, "--baseline", str(baseline)]) == 0
        assert "stale baseline" in capsys.readouterr().out


class TestRuleSelection:
    def test_select_limits_the_rules_run(self, tmp_path, capsys):
        code, payload = lint_json(
            capsys, BAD, "--baseline", str(tmp_path / "b.json"),
            "--select", "REP101",
        )
        assert code == 0
        assert payload["rules"] == ["REP101"]
        assert payload["findings"] == []

    def test_unknown_rule_id_is_rejected(self, capsys):
        assert main(["lint", BAD, "--select", "REP999"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_rules_listing(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP101", "REP104", "REP107"):
            assert rule_id in out
