"""Tests for the workload generators (specs, runs, queries, index)."""

import pytest

from repro.automata.regex import parse_regex, regex_alphabet
from repro.datasets.index import EdgeTagIndex
from repro.datasets.myexperiment import (
    BIOAID_KLEENE_TAG,
    BIOAID_STATS,
    QBLAST_KLEENE_TAG,
    QBLAST_STATS,
    bioaid_specification,
    fork_production_indices,
    qblast_specification,
)
from repro.datasets.paper_example import paper_run, paper_specification
from repro.datasets.queries import (
    generate_ifq,
    generate_kleene_star,
    generate_query_suite,
    generate_random_query,
)
from repro.datasets.runs import generate_fork_heavy_run, generate_run, node_lists
from repro.datasets.synthetic import generate_synthetic_specification


class TestMyExperiment:
    def test_bioaid_statistics_match_the_paper(self):
        spec = bioaid_specification()
        assert spec.size() == BIOAID_STATS["size"]
        assert len(spec.modules) == BIOAID_STATS["modules"]
        assert len(spec.composite_modules) == BIOAID_STATS["composite"]
        assert len(spec.productions) == BIOAID_STATS["productions"]
        assert len(spec.production_graph.recursive_productions) == BIOAID_STATS["recursive"]

    def test_qblast_statistics_match_the_paper(self):
        spec = qblast_specification()
        assert spec.size() == QBLAST_STATS["size"]
        assert len(spec.modules) == QBLAST_STATS["modules"]
        assert len(spec.composite_modules) == QBLAST_STATS["composite"]
        assert len(spec.productions) == QBLAST_STATS["productions"]
        assert len(spec.production_graph.recursive_productions) == QBLAST_STATS["recursive"]

    def test_both_are_strictly_linear_recursive(self):
        assert bioaid_specification().production_graph.is_strictly_linear_recursive
        assert qblast_specification().production_graph.is_strictly_linear_recursive

    def test_kleene_tags_exist(self):
        assert BIOAID_KLEENE_TAG in bioaid_specification().tags
        assert QBLAST_KLEENE_TAG in qblast_specification().tags

    def test_fork_production_indices(self):
        spec = bioaid_specification()
        indices = fork_production_indices(spec, BIOAID_KLEENE_TAG)
        assert len(indices) == 1
        assert spec.production(indices[0]).head.endswith("_F")

    def test_qblast_has_a_two_module_cycle(self):
        spec = qblast_specification()
        lengths = sorted(len(cycle) for cycle in spec.production_graph.cycles)
        assert lengths == [1, 1, 1, 2]


class TestSynthetic:
    @pytest.mark.parametrize("target", [100, 400, 800, 1200])
    def test_size_is_close_to_target(self, target):
        spec = generate_synthetic_specification(target, seed=1)
        assert 0.6 * target <= spec.size() <= 1.6 * target

    def test_deterministic_for_seed(self):
        first = generate_synthetic_specification(300, seed=5)
        second = generate_synthetic_specification(300, seed=5)
        assert first.size() == second.size()
        assert first.modules == second.modules

    def test_has_recursion(self):
        spec = generate_synthetic_specification(500, seed=2)
        assert spec.is_recursive()

    def test_runs_can_be_derived(self):
        spec = generate_synthetic_specification(300, seed=3)
        run = generate_run(spec, 200, seed=3)
        assert run.edge_count >= 200

    def test_rejects_tiny_target(self):
        with pytest.raises(ValueError, match="target_size must be at least 10"):
            generate_synthetic_specification(5)


class TestRunGeneration:
    def test_generate_run_sizes(self):
        spec = bioaid_specification()
        small = generate_run(spec, 200, seed=0)
        large = generate_run(spec, 800, seed=0)
        assert small.edge_count >= 200
        assert large.edge_count >= 800
        assert large.edge_count > small.edge_count

    def test_fork_heavy_runs_contain_long_chains(self):
        spec = bioaid_specification()
        forks = fork_production_indices(spec, BIOAID_KLEENE_TAG)
        run = generate_fork_heavy_run(spec, 400, forks, seed=1)
        index = EdgeTagIndex.from_run(run)
        # The fork tag should appear many times (one edge per recursion level).
        assert index.count(BIOAID_KLEENE_TAG) >= 10

    def test_fork_heavy_requires_productions(self):
        with pytest.raises(ValueError, match="fork_productions must not be empty"):
            generate_fork_heavy_run(bioaid_specification(), 100, ())

    def test_node_lists_full_and_sampled(self):
        run = paper_run(recursion_depth=10)
        l1, l2 = node_lists(run)
        assert len(l1) == run.node_count
        assert l1 == l2
        s1, s2 = node_lists(run, limit=5, seed=1)
        assert len(s1) == 5
        assert s1 == s2
        assert set(s1) <= set(run.node_ids())


class TestQueries:
    def test_ifq_structure(self):
        spec = paper_specification()
        query = generate_ifq(spec, 3, seed=1)
        node = parse_regex(query)
        assert regex_alphabet(node) <= spec.tags
        assert query.count("_*") == 4

    def test_ifq_zero_is_reachability(self):
        assert generate_ifq(paper_specification(), 0) == "_*"

    def test_ifq_explicit_tags(self):
        assert generate_ifq(paper_specification(), 2, tags=["a", "e"]) == "_* a _* e _*"

    def test_ifq_tag_count_mismatch(self):
        with pytest.raises(ValueError, match="expected 2 tags"):
            generate_ifq(paper_specification(), 2, tags=["a"])

    def test_ifq_negative_k(self):
        with pytest.raises(ValueError, match="k must be non-negative"):
            generate_ifq(paper_specification(), -1)

    def test_kleene_star(self):
        assert generate_kleene_star("f1_fork") == "f1_fork*"

    def test_random_queries_parse_and_use_spec_tags(self):
        spec = qblast_specification()
        for seed in range(10):
            query = generate_random_query(spec, seed=seed)
            node = parse_regex(query)
            assert regex_alphabet(node) <= spec.tags

    def test_query_suite_is_deterministic(self):
        spec = paper_specification()
        assert generate_query_suite(spec, count=5, seed=3) == generate_query_suite(
            spec, count=5, seed=3
        )


class TestEdgeTagIndex:
    def test_from_run_counts(self):
        run = paper_run()
        index = EdgeTagIndex.from_run(run)
        assert index.count("c") == 2
        assert index.count("A") == 3
        assert index.count("missing") == 0
        assert index.total_pairs() == run.edge_count

    def test_pairs(self):
        index = EdgeTagIndex.from_run(paper_run())
        assert ("e:1", "e:2") in index.pairs("e")

    def test_rarest_tags_order(self):
        index = EdgeTagIndex.from_run(paper_run())
        order = index.rarest_tags()
        assert order.index("e") < order.index("A")

    def test_round_trip_persistence(self, tmp_path):
        index = EdgeTagIndex.from_run(paper_run())
        path = tmp_path / "index.json"
        index.save(path)
        loaded = EdgeTagIndex.load(path)
        assert loaded.tags() == index.tags()
        assert loaded.pairs("A") == index.pairs("A")
