"""Tests for the derivation engine and run construction."""

import pytest

from repro.datasets.paper_example import W1, W2, W3, W4, paper_run, paper_specification
from repro.errors import DerivationError
from repro.workflow.derivation import Derivation, derive_run, min_completion_cost


class TestPaperRun:
    def test_node_set_matches_figure(self):
        run = paper_run()
        assert set(run.node_ids()) == {
            "c:1",
            "a:1",
            "a:2",
            "e:1",
            "e:2",
            "d:1",
            "d:2",
            "b:1",
            "b:2",
            "b:3",
        }
        assert run.node_count == 10

    def test_edge_set_matches_figure(self):
        run = paper_run()
        edges = {(edge.source, edge.target, edge.tag) for edge in run.edges}
        assert edges == {
            ("c:1", "a:1", "c"),
            ("c:1", "b:2", "c"),
            ("a:1", "a:2", "a"),
            ("a:2", "e:1", "a"),
            ("e:1", "e:2", "e"),
            ("e:2", "d:2", "A"),
            ("d:2", "d:1", "A"),
            ("d:1", "b:1", "A"),
            ("b:2", "b:3", "b"),
            ("b:3", "b:1", "B"),
        }

    def test_deeper_recursion(self):
        run = paper_run(recursion_depth=5)
        assert len(run.nodes_named("a")) == 5
        assert len(run.nodes_named("d")) == 5
        assert len(run.nodes_named("e")) == 2

    def test_zero_recursion(self):
        run = paper_run(recursion_depth=0)
        assert len(run.nodes_named("a")) == 0
        assert len(run.nodes_named("e")) == 2

    def test_run_summary(self):
        run = paper_run()
        assert "10 nodes" in run.describe()


class TestDerivationStepping:
    def test_initial_state(self):
        derivation = Derivation(paper_specification())
        assert derivation.composite_nodes == ("S:1",)
        assert derivation.node_count == 1
        assert derivation.edge_count == 0
        assert not derivation.is_complete()

    def test_step_returns_new_ids_in_position_order(self):
        derivation = Derivation(paper_specification())
        new_ids = derivation.step("S:1", W1)
        assert new_ids == ("c:1", "A:1", "B:1", "b:1")

    def test_unknown_node_rejected(self):
        derivation = Derivation(paper_specification())
        with pytest.raises(DerivationError):
            derivation.step("nope:1", W1)

    def test_atomic_node_rejected(self):
        derivation = Derivation(paper_specification())
        derivation.step("S:1", W1)
        with pytest.raises(DerivationError):
            derivation.step("c:1", W2)

    def test_wrong_production_head_rejected(self):
        derivation = Derivation(paper_specification())
        derivation.step("S:1", W1)
        with pytest.raises(DerivationError):
            derivation.step("A:1", W4)  # W4 rewrites B, not A

    def test_production_index_out_of_range(self):
        derivation = Derivation(paper_specification())
        with pytest.raises(DerivationError):
            derivation.step("S:1", 99)

    def test_incomplete_run_cannot_be_frozen(self):
        derivation = Derivation(paper_specification())
        derivation.step("S:1", W1)
        with pytest.raises(DerivationError):
            derivation.to_run()

    def test_complete_after_all_replacements(self):
        derivation = Derivation(paper_specification())
        derivation.step("S:1", W1)
        derivation.step("A:1", W3)
        derivation.step("B:1", W4)
        assert derivation.is_complete()
        run = derivation.to_run()
        # c:1 and b:1 from W1, e:1/e:2 from W3, b:2/b:3 from W4.
        assert run.node_count == 6
        assert run.derivation_steps == 3

    def test_edges_rewired_through_replacement(self):
        derivation = Derivation(paper_specification())
        derivation.step("S:1", W1)
        derivation.step("A:1", W3)  # A:1 becomes e:1 -> e:2
        derivation.step("B:1", W4)
        run = derivation.to_run()
        edges = {(edge.source, edge.target, edge.tag) for edge in run.edges}
        assert ("c:1", "e:1", "c") in edges
        assert ("e:2", "b:1", "A") in edges


class TestDeriveRun:
    def test_deterministic_given_seed(self):
        spec = paper_specification()
        first = derive_run(spec, seed=7, target_edges=60)
        second = derive_run(spec, seed=7, target_edges=60)
        assert set(first.node_ids()) == set(second.node_ids())
        assert {(e.source, e.target, e.tag) for e in first.edges} == {
            (e.source, e.target, e.tag) for e in second.edges
        }

    def test_different_seeds_differ(self):
        # Needs a specification with real derivation choices; the paper's tiny
        # example only recurses through A, so its runs of equal size coincide.
        from repro.datasets.synthetic import generate_synthetic_specification

        spec = generate_synthetic_specification(300, seed=0)
        first = derive_run(spec, seed=1, target_edges=150)
        second = derive_run(spec, seed=2, target_edges=150)
        assert {(e.source, e.target) for e in first.edges} != {
            (e.source, e.target) for e in second.edges
        }

    def test_target_edges_is_roughly_respected(self):
        spec = paper_specification()
        for target in (50, 150, 400):
            run = derive_run(spec, seed=3, target_edges=target)
            assert run.edge_count >= target
            assert run.edge_count <= target + spec.size() * 3

    def test_runs_are_dags(self):
        spec = paper_specification()
        run = derive_run(spec, seed=5, target_edges=120)
        order = run.topological_order()
        assert len(order) == run.node_count

    def test_all_run_nodes_are_atomic(self):
        spec = paper_specification()
        run = derive_run(spec, seed=5, target_edges=120)
        assert all(node.name in spec.atomic_modules for node in run)

    def test_preferred_productions_bias_growth(self):
        spec = paper_specification()
        fast = derive_run(
            spec, seed=9, target_edges=100, preferred_productions=(W2,), recursion_bias=0.95
        )
        assert len(fast.nodes_named("a")) > 10


class TestMinCompletionCost:
    def test_paper_example_costs(self):
        spec = paper_specification()
        costs = min_completion_cost(spec)
        assert costs["a"] == 0
        # A's cheapest completion is W3 (body "e e" with one edge).
        assert costs["A"] == 1
        assert costs["B"] == 1
        # S -> W1 has 4 edges plus the completions of A and B.
        assert costs["S"] == 4 + costs["A"] + costs["B"]
