"""Tests for simple workflows (production bodies)."""

import pytest

from repro.errors import StructureError
from repro.workflow.simple import Edge, SimpleWorkflow, chain


class TestValidation:
    def test_single_node_body(self):
        body = SimpleWorkflow(["a"])
        assert body.source == 0
        assert body.sink == 0
        assert len(body) == 1

    def test_single_node_body_rejects_edges(self):
        with pytest.raises(StructureError):
            SimpleWorkflow(["a"], [Edge(0, 0, "x")])

    def test_empty_body_rejected(self):
        with pytest.raises(StructureError):
            SimpleWorkflow([])

    def test_requires_single_source(self):
        # two sources: 0 and 1 both have no incoming edges
        with pytest.raises(StructureError, match="source"):
            SimpleWorkflow(["a", "b", "c"], [Edge(0, 2, "c"), Edge(1, 2, "c")])

    def test_requires_single_sink(self):
        with pytest.raises(StructureError, match="sink"):
            SimpleWorkflow(["a", "b", "c"], [Edge(0, 1, "b"), Edge(0, 2, "c")])

    def test_rejects_cycles(self):
        with pytest.raises(StructureError):
            SimpleWorkflow(
                ["a", "b", "c", "d"],
                [Edge(0, 1, "b"), Edge(1, 2, "c"), Edge(2, 1, "b"), Edge(2, 3, "d")],
            )

    def test_rejects_self_loop(self):
        with pytest.raises(StructureError):
            SimpleWorkflow(["a", "b"], [Edge(0, 0, "a"), Edge(0, 1, "b")])

    def test_valid_bodies_are_spanning(self):
        # With a unique source, a unique sink and acyclicity, every node lies
        # on a source->sink path; the engine relies on this guarantee.
        body = SimpleWorkflow(
            ["s", "x", "y", "z", "t"],
            [Edge(0, 1, "x"), Edge(0, 2, "y"), Edge(1, 3, "z"), Edge(2, 3, "z"), Edge(3, 4, "t")],
        )
        for position in range(len(body)):
            assert position == body.source or body.reaches(body.source, position)
            assert position == body.sink or body.reaches(position, body.sink)

    def test_rejects_edge_out_of_range(self):
        with pytest.raises(StructureError):
            SimpleWorkflow(["a", "b"], [Edge(0, 5, "b")])

    def test_diamond_is_valid(self):
        body = SimpleWorkflow(
            ["src", "left", "right", "snk"],
            [Edge(0, 1, "l"), Edge(0, 2, "r"), Edge(1, 3, "s"), Edge(2, 3, "s")],
        )
        assert body.source == 0
        assert body.sink == 3

    def test_parallel_edges_with_different_tags(self):
        body = SimpleWorkflow(["a", "b"], [Edge(0, 1, "x"), Edge(0, 1, "y")])
        assert len(body.edges) == 2
        assert {e.tag for e in body.edges_between(0, 1)} == {"x", "y"}


class TestStructure:
    def test_positions_of(self):
        body = SimpleWorkflow(["e", "e"], [Edge(0, 1, "e")])
        assert body.positions_of("e") == (0, 1)
        assert body.positions_of("zzz") == ()

    def test_reachability(self):
        body = SimpleWorkflow(
            ["c", "A", "B", "b"],
            [Edge(0, 1, "c"), Edge(0, 2, "c"), Edge(1, 3, "A"), Edge(2, 3, "B")],
        )
        assert body.reaches(0, 3)
        assert body.reaches(0, 1)
        assert body.reaches(0, 2)
        assert not body.reaches(1, 2)
        assert not body.reaches(2, 1)
        assert not body.reaches(3, 0)
        assert not body.reaches(1, 1)

    def test_topological_order_is_consistent(self):
        body = SimpleWorkflow(
            ["a", "b", "c", "d"],
            [Edge(0, 1, "b"), Edge(0, 2, "c"), Edge(1, 3, "d"), Edge(2, 3, "d")],
        )
        order = body.topological_order
        rank = {position: index for index, position in enumerate(order)}
        for edge in body.edges:
            assert rank[edge.source] < rank[edge.target]

    def test_tags(self):
        body = chain(["x", "y", "z"])
        assert body.tags() == {"y", "z"}

    def test_chain_helper_defaults_to_head_names(self):
        body = chain(["a", "b", "c"])
        assert [(e.source, e.target, e.tag) for e in body.edges] == [(0, 1, "b"), (1, 2, "c")]

    def test_chain_helper_custom_tags(self):
        body = chain(["a", "b"], tags=["data"])
        assert body.edges[0].tag == "data"

    def test_equality_and_hash(self):
        left = chain(["a", "b"])
        right = chain(["a", "b"])
        assert left == right
        assert hash(left) == hash(right)
        assert left != chain(["a", "c"])
