"""Tests for JSON persistence of specifications and runs."""

import pytest

from repro.datasets.myexperiment import bioaid_specification
from repro.datasets.paper_example import paper_run, paper_specification
from repro.errors import ReproError
from repro.workflow.serialization import (
    load_run,
    load_specification,
    run_from_dict,
    run_to_dict,
    save_run,
    save_specification,
    specification_from_dict,
    specification_to_dict,
)


class TestSpecificationRoundTrip:
    def test_paper_example(self):
        spec = paper_specification()
        clone = specification_from_dict(specification_to_dict(spec))
        assert clone.start == spec.start
        assert clone.modules == spec.modules
        assert clone.size() == spec.size()
        assert [p.head for p in clone.productions] == [p.head for p in spec.productions]
        assert clone.production(0).body == spec.production(0).body

    def test_bioaid_through_files(self, tmp_path):
        spec = bioaid_specification()
        path = tmp_path / "bioaid.json"
        save_specification(spec, path)
        loaded = load_specification(path)
        assert loaded.size() == spec.size()
        assert loaded.production_graph.recursive_productions == (
            spec.production_graph.recursive_productions
        )

    def test_wrong_kind_rejected(self):
        with pytest.raises(ReproError):
            specification_from_dict({"kind": "something-else"})


class TestRunRoundTrip:
    def test_labels_survive(self, tmp_path):
        run = paper_run(recursion_depth=3)
        path = tmp_path / "run.json"
        save_run(run, path)
        loaded = load_run(path)
        assert set(loaded.node_ids()) == set(run.node_ids())
        assert loaded.edge_count == run.edge_count
        for node_id in run.node_ids():
            assert loaded.label_of(node_id) == run.label_of(node_id)

    def test_queries_work_on_reloaded_runs(self, tmp_path):
        from repro.core.engine import ProvenanceQueryEngine

        run = paper_run()
        payload = run_to_dict(run)
        reloaded = run_from_dict(payload)
        engine = ProvenanceQueryEngine(reloaded.spec)
        assert engine.pairwise(reloaded, "c:1", "b:1", "_* e _*")
        assert not engine.pairwise(reloaded, "c:1", "b:3", "_* e _*")

    def test_wrong_kind_rejected(self):
        with pytest.raises(ReproError):
            run_from_dict({"kind": "specification"})
