"""Tests for specifications and the production graph."""

import pytest

from repro.datasets.paper_example import paper_specification
from repro.errors import RecursionError_, SpecificationError
from repro.workflow.serialization import specification_from_dict, specification_to_dict
from repro.workflow.simple import chain
from repro.workflow.spec import Production, Specification


class TestPaperSpecification:
    def test_module_partition(self):
        spec = paper_specification()
        assert spec.start == "S"
        assert spec.composite_modules == {"S", "A", "B"}
        assert spec.atomic_modules == {"a", "b", "c", "d", "e"}
        assert spec.modules == {"S", "A", "B", "a", "b", "c", "d", "e"}

    def test_productions_of(self):
        spec = paper_specification()
        assert spec.productions_of["S"] == (0,)
        assert spec.productions_of["A"] == (1, 2)
        assert spec.productions_of["B"] == (3,)

    def test_size_measure(self):
        # size = sum over productions of (1 + body length) = 5 + 4 + 3 + 3
        assert paper_specification().size() == 15

    def test_tags(self):
        assert paper_specification().tags == {"a", "b", "c", "e", "A", "B"}

    def test_recursion_analysis(self):
        spec = paper_specification()
        graph = spec.production_graph
        assert spec.recursive_modules == {"A"}
        assert graph.is_strictly_linear_recursive
        assert len(graph.cycles) == 1
        cycle = graph.cycles[0]
        assert cycle.modules == ("A",)
        assert cycle.productions == (1,)  # W2 is the recursive production
        assert cycle.positions == (1,)  # A sits at position 1 of W2's body
        assert graph.recursive_productions == {1}

    def test_cycle_lookups(self):
        graph = paper_specification().production_graph
        assert graph.cycle_of("A").index == 0
        assert graph.cycle_of("B") is None
        assert graph.cycle_offset_of("A") == 0

    def test_describe_mentions_key_facts(self):
        text = paper_specification().describe()
        assert "start module : S" in text
        assert "productions  : 4" in text


class TestValidation:
    def test_start_module_must_be_composite(self):
        with pytest.raises(SpecificationError, match="start module"):
            Specification(start="X", productions=[Production("S", chain(["a", "b"]))])

    def test_atomic_declaration_conflicts_with_productions(self):
        with pytest.raises(SpecificationError, match="declared atomic"):
            Specification(
                start="S",
                productions=[Production("S", chain(["a", "b"]))],
                atomic_modules=["S"],
            )

    def test_unproductive_module_rejected(self):
        # A can only rewrite to something containing A: it never terminates.
        with pytest.raises(SpecificationError, match="terminate"):
            Specification(
                start="S",
                productions=[
                    Production("S", chain(["x", "A", "y"])),
                    Production("A", chain(["p", "A", "q"])),
                ],
            )

    def test_needs_at_least_one_production(self):
        with pytest.raises(SpecificationError):
            Specification(start="S", productions=[])

    def test_non_strictly_linear_recursion_rejected(self):
        # The Fig. 5 pattern: two cycles through S (S -> a S, S -> S b ... ):
        # here S occurs twice in one body, giving two parallel cycle edges.
        with pytest.raises(RecursionError_):
            Specification(
                start="S",
                productions=[
                    Production("S", chain(["x", "S", "y", "S", "z"])),
                    Production("S", chain(["x", "z"])),
                ],
            )

    def test_two_cycles_sharing_a_module_rejected(self):
        # S -> ... S ... directly, and also S -> A ..., A -> ... S ...:
        # the SCC {S, A} is not a simple cycle.
        with pytest.raises(RecursionError_):
            Specification(
                start="S",
                productions=[
                    Production("S", chain(["x", "S", "y"])),
                    Production("S", chain(["x", "A", "y"])),
                    Production("S", chain(["x", "y"])),
                    Production("A", chain(["p", "S", "q"])),
                    Production("A", chain(["p", "q"])),
                ],
            )

    def test_disjoint_cycles_accepted(self):
        spec = Specification(
            start="S",
            productions=[
                Production("S", chain(["x", "A", "B", "y"])),
                Production("A", chain(["p", "A", "q"])),
                Production("A", chain(["p", "q"])),
                Production("B", chain(["r", "B", "t"])),
                Production("B", chain(["r", "t"])),
            ],
        )
        assert spec.recursive_modules == {"A", "B"}
        assert len(spec.production_graph.cycles) == 2

    def test_two_module_cycle_accepted(self):
        spec = Specification(
            start="S",
            productions=[
                Production("S", chain(["x", "A", "y"])),
                Production("A", chain(["p", "B", "q"])),
                Production("B", chain(["r", "A", "t"])),
                Production("B", chain(["r", "t"])),
            ],
        )
        graph = spec.production_graph
        assert graph.is_strictly_linear_recursive
        assert len(graph.cycles) == 1
        cycle = graph.cycles[0]
        assert set(cycle.modules) == {"A", "B"}
        assert len(cycle) == 2
        # Walking the cycle from A via its step info leads to B and back.
        offset_a = cycle.offset_of("A")
        production_index, position = cycle.step(offset_a)
        assert spec.production(production_index).head == "A"
        assert spec.production(production_index).body.module_at(position) == "B"

    def test_non_recursive_specification(self):
        spec = Specification(
            start="S",
            productions=[
                Production("S", chain(["x", "T", "y"])),
                Production("T", chain(["p", "q"])),
            ],
        )
        assert not spec.is_recursive()
        assert spec.production_graph.cycles == ()


class TestCycleHelpers:
    def test_chain_offset_wraps_around(self):
        spec = Specification(
            start="S",
            productions=[
                Production("S", chain(["x", "A", "y"])),
                Production("A", chain(["p", "B", "q"])),
                Production("B", chain(["r", "A", "t"])),
                Production("B", chain(["r", "t"])),
            ],
        )
        cycle = spec.production_graph.cycles[0]
        start = cycle.offset_of("A")
        assert cycle.module_at(cycle.chain_offset(start, 0)) == "A"
        assert cycle.module_at(cycle.chain_offset(start, 1)) == "B"
        assert cycle.module_at(cycle.chain_offset(start, 2)) == "A"
        assert cycle.module_at(cycle.chain_offset(start, 5)) == "B"


class TestFingerprint:
    def test_stable_across_instances(self):
        assert paper_specification().fingerprint == paper_specification().fingerprint

    def test_survives_serialization_round_trip(self):
        spec = paper_specification()
        reloaded = specification_from_dict(specification_to_dict(spec))
        assert reloaded.fingerprint == spec.fingerprint

    def test_name_does_not_affect_fingerprint(self):
        spec = paper_specification()
        renamed = Specification(
            start=spec.start,
            productions=spec.productions,
            atomic_modules=spec.atomic_modules,
            name="renamed",
        )
        assert renamed.fingerprint == spec.fingerprint

    def test_different_grammars_differ(self):
        first = Specification(start="S", productions=[Production("S", chain(["a", "b"]))])
        second = Specification(start="S", productions=[Production("S", chain(["a", "c"]))])
        assert first.fingerprint != second.fingerprint
