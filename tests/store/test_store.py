"""Tests for the persistent index store (round-trips, corruption, gc)."""

import json

import pytest

from repro.core.decomposition import warm_frontier_dfa
from repro.core.engine import ProvenanceQueryEngine
from repro.datasets.paper_example import paper_specification
from repro.service import IndexCache, QueryService
from repro.store import FORMAT_VERSION, IndexStore
from repro.store import store as store_module
from repro.workflow.derivation import derive_run

SAFE_QUERY = "_* e _*"
UNSAFE_QUERY = "_* a _*"


@pytest.fixture(scope="module")
def spec():
    return paper_specification()


@pytest.fixture(scope="module")
def run(spec):
    return derive_run(spec, seed=0, target_edges=60)


def _warmed_store(tmp_path, spec, queries=(SAFE_QUERY, UNSAFE_QUERY)):
    store = IndexStore(tmp_path / "store")
    cache = IndexCache(store=store)
    for query in queries:
        if cache.safety(spec, query).is_safe:
            cache.index(spec, query)
        else:
            cache.plan(spec, query)
    return store


class TestEntryRoundTrip:
    def test_safe_entry_restores_without_builds(self, tmp_path, spec, run):
        store = _warmed_store(tmp_path, spec)
        cache = IndexCache(store=IndexStore(store.root))
        index = cache.index(spec, SAFE_QUERY)
        stats = cache.stats
        assert stats.index_builds == 0
        assert stats.safety_checks == 0
        assert stats.store_hits == 1
        # The restored index shares the restored report's DFA, like a build.
        assert index.dfa is cache.safety(spec, SAFE_QUERY).dfa
        fresh = ProvenanceQueryEngine(spec)
        assert ProvenanceQueryEngine(spec, cache=cache).evaluate(
            run, SAFE_QUERY
        ) == fresh.evaluate(run, SAFE_QUERY)

    def test_unsafe_entry_restores_verdict_and_plan(self, tmp_path, spec, run):
        store = _warmed_store(tmp_path, spec)
        original = IndexCache(store=store).plan(spec, UNSAFE_QUERY)
        cache = IndexCache(store=IndexStore(store.root))
        assert not cache.safety(spec, UNSAFE_QUERY).is_safe
        plan = cache.plan(spec, UNSAFE_QUERY)
        stats = cache.stats
        assert stats.plan_builds == 0
        assert stats.safety_checks == 0
        assert plan.root == original.root
        assert plan.safe_subtrees == original.safe_subtrees
        fresh = ProvenanceQueryEngine(spec)
        assert ProvenanceQueryEngine(spec, cache=cache).evaluate(
            run, UNSAFE_QUERY
        ) == fresh.evaluate(run, UNSAFE_QUERY)

    def test_macro_dfas_persist_after_sync(self, tmp_path, spec, run):
        store = IndexStore(tmp_path / "store")
        cache = IndexCache(store=store)
        plan = cache.plan(spec, UNSAFE_QUERY)
        warm_frontier_dfa(plan, run)
        assert plan.macro_dfas()
        cache.sync(spec, UNSAFE_QUERY)
        restored = IndexCache(store=IndexStore(store.root)).plan(spec, UNSAFE_QUERY)
        assert restored.macro_dfas().keys() == plan.macro_dfas().keys()
        for key, dfa in plan.macro_dfas().items():
            assert restored.macro_dfas()[key].transitions == dfa.transitions

    def test_no_temp_files_left_behind(self, tmp_path, spec):
        store = _warmed_store(tmp_path, spec)
        assert not list(store.root.rglob("*.tmp"))


class TestCorruption:
    """Truncation, bad checksums and version bumps must degrade to a clean
    rebuild — never a crash, never a wrong answer."""

    def _entry_file(self, store):
        (path,) = store.root.glob("entries/*/*.json")
        return path

    def _assert_clean_rebuild(self, store, spec):
        cache = IndexCache(store=IndexStore(store.root))
        index = cache.index(spec, SAFE_QUERY)
        assert index is not None
        stats = cache.stats
        assert stats.store_hits == 0
        assert stats.index_builds == 1  # rebuilt from scratch
        assert stats.store_errors >= 1
        # The rebuild overwrote the bad artifact: next process hits again.
        after = IndexCache(store=IndexStore(store.root))
        after.index(spec, SAFE_QUERY)
        assert after.stats.store_hits == 1

    def test_truncated_file(self, tmp_path, spec):
        store = _warmed_store(tmp_path, spec, queries=(SAFE_QUERY,))
        path = self._entry_file(store)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        self._assert_clean_rebuild(store, spec)

    def test_checksum_mismatch(self, tmp_path, spec):
        store = _warmed_store(tmp_path, spec, queries=(SAFE_QUERY,))
        path = self._entry_file(store)
        envelope = json.loads(path.read_text())
        # Flip a bit inside the payload (decode, mutate, re-encode) while
        # leaving the recorded checksum untouched.
        payload = store_module._decode_payload(envelope["payload64"])
        payload["report"]["dfa"]["start"] = 1 - int(payload["report"]["dfa"]["start"])
        envelope["payload64"] = store_module._encode_payload(payload)
        path.write_text(json.dumps(envelope))
        self._assert_clean_rebuild(store, spec)

    def test_format_version_mismatch(self, tmp_path, spec):
        store = _warmed_store(tmp_path, spec, queries=(SAFE_QUERY,))
        path = self._entry_file(store)
        envelope = json.loads(path.read_text())
        envelope["format"] = FORMAT_VERSION + 1
        path.write_text(json.dumps(envelope))
        self._assert_clean_rebuild(store, spec)

    def test_not_json_at_all(self, tmp_path, spec):
        store = _warmed_store(tmp_path, spec, queries=(SAFE_QUERY,))
        self._entry_file(store).write_text("not json {")
        self._assert_clean_rebuild(store, spec)

    def test_corrupt_run_file_cannot_block_the_others(self, tmp_path, spec, run):
        store = IndexStore(tmp_path / "store")
        store.save_run("good", run)
        store.run_path("bad").parent.mkdir(parents=True, exist_ok=True)
        store.run_path("bad").write_text("garbage")
        service = QueryService(store=IndexStore(store.root))
        assert service.get_run("good").edges == run.edges
        with pytest.raises(KeyError):
            service.get_run("bad")  # corruption surfaces as unknown-run
        assert service.run_ids() == ("good",)  # ...and drops out of the registry


class TestGc:
    def test_size_budget_evicts_lru(self, tmp_path, spec):
        store = _warmed_store(
            tmp_path, spec, queries=(SAFE_QUERY, "_*", "A+", "_* b _*", "_* c _*")
        )
        infos = store.entries()
        assert len(infos) == 5
        total = store.total_bytes()
        # Touch one entry so it is the most recently used.
        cache = IndexCache(store=store)
        cache.index(spec, SAFE_QUERY)
        result = store.gc(total // 2)
        assert result.removed > 0
        assert result.remaining_bytes <= total // 2
        assert store.total_bytes() == result.remaining_bytes
        surviving = {info.query for info in store.entries()}
        assert "_* . e . _*" in surviving  # the freshly touched entry survived
        assert store.counters.evictions == result.removed

    def test_auto_gc_on_write(self, tmp_path, spec):
        probe = _warmed_store(tmp_path, spec, queries=(SAFE_QUERY,))
        budget = probe.total_bytes() + 10
        store = IndexStore(tmp_path / "bounded", max_bytes=budget)
        cache = IndexCache(store=store)
        for query in (SAFE_QUERY, "_*", "A+"):
            cache.index(spec, query)
        assert store.total_bytes() <= budget
        assert store.counters.evictions > 0

    def test_runs_are_never_evicted(self, tmp_path, spec, run):
        store = _warmed_store(tmp_path, spec)
        store.save_run("r", run)
        store.gc(0)
        assert store.run_ids() == ["r"]
        assert len(store) == 0

    def test_invalid_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes must be positive"):
            IndexStore(tmp_path / "s", max_bytes=0)


class TestRunRegistry:
    def test_run_round_trip_preserves_labels(self, tmp_path, spec, run):
        store = IndexStore(tmp_path / "store")
        store.save_run("r1", run)
        loaded = store.load_runs()["r1"]
        assert loaded.spec.fingerprint == run.spec.fingerprint
        assert loaded.nodes == run.nodes  # labels included: no re-labeling
        assert loaded.edges == run.edges

    def test_awkward_run_ids_are_quoted(self, tmp_path, spec, run):
        store = IndexStore(tmp_path / "store")
        store.save_run("team/a run", run)
        assert store.run_ids() == ["team/a run"]


class TestOrphanGc:
    def test_orphaned_grammar_entries_are_dropped(self, tmp_path, spec, run):
        """Entries of grammars with no registered run are reclaimed; entries
        of registered grammars survive (the gc --orphans satellite)."""
        from repro.datasets.myexperiment import bioaid_specification

        store = IndexStore(tmp_path / "store")
        store.save_run("r1", run)  # registers the paper grammar
        cache = IndexCache(store=store)
        cache.index(spec, SAFE_QUERY)  # kept: fingerprint has a run
        orphan_spec = bioaid_specification()
        cache.index(orphan_spec, "_*")  # orphan: no bioaid run registered
        result = store.gc_orphans()
        assert result.removed == 1
        assert result.freed_bytes > 0
        surviving = {info.fingerprint for info in store.entries()}
        assert surviving == {spec.fingerprint}
        assert store.run_ids() == ["r1"]  # runs are never touched
        assert store.counters.evictions == 1

    def test_store_with_no_runs_is_all_orphans(self, tmp_path, spec):
        store = _warmed_store(tmp_path, spec)
        count = len(store.entries())
        result = store.gc_orphans()
        assert result.removed == count
        assert store.entries() == []

    def test_unreadable_entries_count_as_orphans(self, tmp_path, spec, run):
        store = IndexStore(tmp_path / "store")
        store.save_run("r1", run)
        cache = IndexCache(store=store)
        cache.index(spec, SAFE_QUERY)
        path = next(iter(store.entries())).path
        path.write_text("garbage {")
        result = store.gc_orphans()
        assert result.removed == 1
        assert store.entries() == []

    def test_registered_fingerprints_reads_envelopes_only(self, tmp_path, spec, run):
        store = IndexStore(tmp_path / "store")
        store.save_run("r1", run)
        assert store.registered_fingerprints() == frozenset({spec.fingerprint})


class TestWriterCoordination:
    def test_identical_save_is_skipped(self, tmp_path, spec):
        """Re-saving byte-identical content is a counted no-op (the shared-
        volume content-addressed skip)."""
        store = IndexStore(tmp_path / "store")
        cache = IndexCache(store=store)
        report = cache.safety(spec, SAFE_QUERY)
        index = cache.index(spec, SAFE_QUERY)
        writes = store.counters.writes
        assert store.save(spec.fingerprint, "_* . e . _*", report=report, index=index, plan=None)
        counters = store.counters
        assert counters.writes == writes  # elided
        assert counters.skipped_writes >= 1

    def test_corrupted_artifact_is_still_overwritten(self, tmp_path, spec):
        """A payload corrupted under an intact checksum field must not
        suppress the repairing overwrite."""
        store = IndexStore(tmp_path / "store")
        cache = IndexCache(store=store)
        report = cache.safety(spec, SAFE_QUERY)
        index = cache.index(spec, SAFE_QUERY)
        path = store.entry_path(spec.fingerprint, "_* . e . _*")
        envelope = json.loads(path.read_text())
        payload = store_module._decode_payload(envelope["payload64"])
        payload["report"]["dfa"]["start"] = 1 - int(payload["report"]["dfa"]["start"])
        envelope["payload64"] = store_module._encode_payload(payload)
        path.write_text(json.dumps(envelope))
        writes = store.counters.writes
        assert store.save(spec.fingerprint, "_* . e . _*", report=report, index=index, plan=None)
        assert store.counters.writes == writes + 1  # really rewritten
        restored = IndexStore(store.root).load(spec, "_* . e . _*")
        assert restored is not None

    def test_entry_lock_is_exclusive_and_degrades(self, tmp_path):
        store = IndexStore(tmp_path / "store")
        with store.entry_lock("f" * 64, "q") as acquired:
            assert acquired
            with store.entry_lock("f" * 64, "q", timeout=0.2) as second:
                assert not second  # held elsewhere: degrade, never deadlock
        with store.entry_lock("f" * 64, "q", timeout=0.2) as again:
            assert again  # released on exit

    def test_stale_lock_is_broken(self, tmp_path):
        import os
        import time

        store = IndexStore(tmp_path / "store")
        path = store.entry_path("f" * 64, "q")
        lock = path.with_name(path.name + ".lock")
        lock.parent.mkdir(parents=True, exist_ok=True)
        lock.touch()
        old = time.time() - 3600
        os.utime(lock, (old, old))  # a crashed writer from an hour ago
        with store.entry_lock("f" * 64, "q", timeout=1.0) as acquired:
            assert acquired

    def test_cross_process_build_waits_for_the_winner(self, tmp_path, spec):
        """A cache losing the entry lock re-checks the store afterwards and
        restores the winner's artifact instead of rebuilding."""
        store = IndexStore(tmp_path / "store")
        IndexCache(store=store).index(spec, SAFE_QUERY)  # the "winner"
        loser = IndexCache(store=IndexStore(store.root))
        loser.index(spec, SAFE_QUERY)
        stats = loser.stats
        assert stats.index_builds == 0
        assert stats.store_hits == 1
