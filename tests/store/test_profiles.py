"""The store's opt-in execution-profile tier."""

import json

from repro.obs import ExecutionProfile
from repro.obs.tracer import Span
from repro.store import IndexStore


def _profile(query="a b", run="run-1"):
    spans = [
        Span(
            name="exec.plan",
            trace_id=1,
            span_id=2,
            parent_id=1,
            start=0.2,
            end=0.4,
            attrs={"strategy": "frontier"},
            thread="main",
        ),
        Span(
            name="query.evaluate",
            trace_id=1,
            span_id=1,
            parent_id=None,
            start=0.0,
            end=1.0,
            attrs={},
            thread="main",
        ),
    ]
    return ExecutionProfile.from_spans(
        spans, query=query, run=run, meta={"command": "query"}
    )


class TestProfilePersistence:
    def test_round_trip(self, tmp_path):
        store = IndexStore(tmp_path)
        assert store.save_profile(_profile())
        (restored,) = store.load_profiles("run-1")
        assert restored.query == "a b"
        assert restored.run == "run-1"
        assert restored.meta == {"command": "query"}
        assert restored.root is not None
        assert restored.root.children[0].attrs == {"strategy": "frontier"}
        assert store.counters.writes == 1

    def test_saves_are_content_addressed(self, tmp_path):
        store = IndexStore(tmp_path)
        store.save_profile(_profile())
        store.save_profile(_profile())  # identical payload, same artifact
        store.save_profile(_profile(query="c d"))
        assert len(list(store.profile_dir("run-1").glob("*.json"))) == 2
        queries = [profile.query for profile in store.load_profiles("run-1")]
        assert queries == ["a b", "c d"]  # sorted by query text

    def test_runs_are_isolated(self, tmp_path):
        store = IndexStore(tmp_path)
        store.save_profile(_profile(run="run-1"))
        store.save_profile(_profile(run="run-2", query="z"))
        assert [p.run for p in store.load_profiles("run-1")] == ["run-1"]
        assert [p.query for p in store.load_profiles("run-2")] == ["z"]

    def test_missing_run_yields_empty(self, tmp_path):
        store = IndexStore(tmp_path)
        assert store.load_profiles("nowhere") == []

    def test_corrupt_artifacts_are_counted_and_skipped(self, tmp_path):
        store = IndexStore(tmp_path)
        store.save_profile(_profile())
        target = next(store.profile_dir("run-1").glob("*.json"))
        envelope = json.loads(target.read_text())
        envelope["checksum"] = "0" * 64
        target.write_text(json.dumps(envelope))
        (store.profile_dir("run-1") / "junk.json").write_text("not json")
        assert store.load_profiles("run-1") == []
        assert store.counters.errors == 2

    def test_awkward_run_ids_are_quoted(self, tmp_path):
        store = IndexStore(tmp_path)
        run_id = "runs/a=b 2"
        store.save_profile(_profile(run=run_id))
        (restored,) = store.load_profiles(run_id)
        assert restored.run == run_id
        assert store.profile_dir(run_id).is_dir()
        # The quoted directory stays inside the profiles tier.
        assert store.profile_dir(run_id).parent == tmp_path / "profiles"
