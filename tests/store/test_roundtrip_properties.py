"""Property-based round-trip tests for the persistent store.

Hypothesis generates random queries over a few cached specifications; each
query's cache entry is built through a store-backed cache, reloaded by a
*fresh* cache in the same store, and the reloaded artifacts must be
behaviorally identical to freshly built ones: same safety verdict, same DFA,
same all-pairs answers across the safe and unsafe strategies — with zero
safety checks, index builds or plan builds after the restart.
"""

import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.automata.regex import canonicalize_regex, parse_regex, regex_to_string
from repro.core.engine import ProvenanceQueryEngine
from repro.datasets.paper_example import paper_specification
from repro.datasets.synthetic import generate_synthetic_specification
from repro.service import IndexCache
from repro.store import IndexStore
from repro.workflow.derivation import derive_run

_SPECS = {
    "paper": paper_specification(),
    "synthetic": generate_synthetic_specification(120, seed=1),
}
_RUNS = {name: derive_run(spec, seed=0, target_edges=60) for name, spec in _SPECS.items()}


@st.composite
def spec_and_query(draw):
    name = draw(st.sampled_from(sorted(_SPECS)))
    spec = _SPECS[name]
    tags = sorted(spec.tags)

    def leaf():
        choice = draw(st.integers(0, 3))
        if choice == 0:
            return "_"
        if choice == 1:
            return "_*"
        return draw(st.sampled_from(tags))

    shape = draw(st.integers(0, 4))
    if shape == 0:
        query = leaf()
    elif shape == 1:
        query = f"{leaf()} . {leaf()}"
    elif shape == 2:
        query = f"({leaf()} | {leaf()})"
    elif shape == 3:
        query = f"({draw(st.sampled_from(tags))})*"
    else:
        query = f"{leaf()} . ({leaf()} | {leaf()})* . {leaf()}"
    return name, spec, query


class TestStoreRoundTrip:
    @given(spec_and_query())
    @settings(
        max_examples=30, deadline=None, suppress_health_check=[HealthCheck.data_too_large]
    )
    def test_reloaded_entries_answer_identically(self, data):
        name, spec, query = data
        run = _RUNS[name]
        with tempfile.TemporaryDirectory() as tmp:
            builder = IndexCache(store=IndexStore(tmp))
            safe = builder.safety(spec, query).is_safe
            if safe:
                builder.index(spec, query)
            else:
                builder.plan(spec, query)

            restored = IndexCache(store=IndexStore(tmp))
            assert restored.safety(spec, query).is_safe == safe
            reference = ProvenanceQueryEngine(spec)  # store-free fresh build
            engine = ProvenanceQueryEngine(spec, cache=restored)
            if safe:
                expected = reference.evaluate(run, query)
                assert engine.evaluate(run, query) == expected
            else:
                plan = restored.plan(spec, query)
                fresh_plan = reference.plan(query)
                assert plan.root == fresh_plan.root
                assert plan.safe_subtrees == fresh_plan.safe_subtrees
                for strategy in ("frontier", "join"):
                    assert engine.evaluate(run, query, strategy=strategy) == (
                        reference.evaluate(run, query, strategy=strategy)
                    ), strategy
            stats = restored.stats
            assert stats.safety_checks == 0
            assert stats.index_builds == 0
            assert stats.plan_builds == 0
            assert stats.store_errors == 0

    @given(spec_and_query())
    @settings(max_examples=50, deadline=None)
    def test_canonical_trees_render_parse_stably(self, data):
        """The plan codec stores syntax trees as query text; canonical trees
        (the only ones the cache ever plans) must round-trip to equal trees,
        subtrees included."""
        _, _, query = data
        canonical = canonicalize_regex(parse_regex(query))
        stack = [canonical]
        while stack:
            node = stack.pop()
            assert parse_regex(regex_to_string(node)) == node
            stack.extend(node.children())
