"""The generic scenario harness: checksums, determinism, document schema."""

import pytest

from repro.bench.catalog import get_scenario
from repro.bench.scenarios import (
    SCHEMA,
    ExecutorFactors,
    Scenario,
    ScenarioError,
    resolve_grammar,
    resolve_scale,
    result_checksum,
    run_scenario,
    run_suite,
    run_table,
)

#: A cheap catalog entry used wherever a real workload must execute.
CHEAP_ID = "fig13d-pairwise-qblast"


class TestChecksum:
    def test_sets_and_tuples_are_order_independent(self):
        assert result_checksum({("a", "b"), ("c", "d")}) == result_checksum(
            {("c", "d"), ("a", "b")}
        )

    def test_checksum_carries_the_result_size(self):
        assert result_checksum([1, 2, 3]).startswith("3:")
        assert result_checksum({}).startswith("0:")

    def test_different_answers_flip_the_checksum(self):
        assert result_checksum({("a", "b")}) != result_checksum({("a", "c")})


class TestResolvers:
    def test_unknown_scale_raises(self):
        with pytest.raises(ScenarioError, match="unknown scale"):
            resolve_scale("enormous")

    def test_unknown_grammar_family_raises(self):
        with pytest.raises(ScenarioError, match="grammar"):
            resolve_grammar("no-such-family:100")

    def test_synthetic_families_resolve(self):
        for token in ("deep-recursion:60", "wide-alternation:60", "dense-wildcard:60"):
            assert resolve_grammar(token) is not None

    def test_unknown_query_class_raises(self):
        bogus = Scenario(
            id="x", title="x", grammar="paper-example", query_class="nonsense",
            run_edges=50,
        )
        with pytest.raises(ScenarioError, match="query class"):
            run_scenario(bogus, "smoke")


class TestRunScenario:
    def test_smoke_run_is_deterministic(self):
        scenario = get_scenario(CHEAP_ID)
        first = run_scenario(scenario, "smoke", repetitions=2)
        second = run_scenario(scenario, "smoke", repetitions=2)
        assert first.checksum == second.checksum
        assert first.repetitions == 2
        assert len(first.times_s) == 2
        assert first.median_s >= 0.0
        assert first.p95_s >= first.median_s >= 0.0

    def test_result_row_shape(self):
        result = run_scenario(get_scenario(CHEAP_ID), "smoke", repetitions=1)
        row = result.as_dict()
        assert row["id"] == CHEAP_ID
        assert set(row) == {
            "id", "factors", "repetitions", "times_s", "median_s", "p95_s",
            "checksum", "detail",
        }
        assert row["factors"]["grammar"] == "qblast"
        assert row["factors"]["executor"] == ExecutorFactors().as_dict()


class TestRunSuite:
    def test_document_schema_and_table(self):
        document = run_suite([get_scenario(CHEAP_ID)], "smoke", suite="ci", repetitions=1)
        assert document["schema"] == SCHEMA
        assert document["scale"] == "smoke"
        assert document["calibration_s"] > 0.0
        assert document["cpus"] >= 1
        [entry] = document["scenarios"]
        assert entry["id"] == CHEAP_ID
        [row] = run_table(document)
        assert row["scenario"] == CHEAP_ID
        assert 'median_ms' in row
        assert 'checksum' in row
