"""The scenario catalog: unique ids, resolvable factors, sound invariants."""

import pytest

from repro.bench.catalog import CATALOG, INVARIANTS, check_catalog, get_scenario, select
from repro.bench.scenarios import ScenarioError, resolve_grammar


class TestCatalogShape:
    def test_ids_are_unique(self):
        ids = [scenario.id for scenario in CATALOG]
        assert len(ids) == len(set(ids))

    def test_static_check_is_clean(self):
        assert check_catalog(runnable=False) == []

    def test_invariants_reference_existing_scenarios(self):
        ids = {scenario.id for scenario in CATALOG}
        for invariant in INVARIANTS:
            assert invariant.fast in ids, invariant.id
            assert invariant.slow in ids, invariant.id

    def test_every_grammar_token_resolves(self):
        for scenario in CATALOG:
            assert resolve_grammar(scenario.grammar) is not None

    def test_ci_suite_is_nonempty_and_within_catalog(self):
        ci = select(suite="ci")
        assert ci
        assert {scenario.id for scenario in ci} <= {scenario.id for scenario in CATALOG}

    def test_synthetic_grammar_families_are_covered(self):
        families = {scenario.grammar.split(":")[0] for scenario in CATALOG}
        assert {"deep-recursion", "wide-alternation", "dense-wildcard"} <= families


class TestSelection:
    def test_get_scenario_unknown_id_raises(self):
        with pytest.raises(ScenarioError, match="unknown scenario"):
            get_scenario("no-such-scenario")

    def test_select_explicit_ids_preserves_argument_order(self):
        ids = [scenario.id for scenario in reversed(CATALOG[:3])]
        picked = select(ids=ids)
        assert [scenario.id for scenario in picked] == ids

    def test_select_unknown_suite_raises(self):
        with pytest.raises(ScenarioError, match="known suites"):
            select(suite="nightly")

    def test_select_all_suite_returns_everything(self):
        assert len(select(suite="all")) == len(CATALOG)
