"""Trajectory gating: regressions fail, improvements pass, bootstrap works.

These tests build synthetic ``repro-bench-trajectory/1`` documents (no real
benchmark runs) and drive both the :func:`repro.bench.gate.compare` library
API and the ``repro bench gate`` CLI, which is what CI calls.
"""

import json

import pytest

from repro.bench.__main__ import main as bench_main
from repro.bench.gate import (
    TrajectoryError,
    compare,
    load_trajectory,
    write_trajectory,
)
from repro.bench.scenarios import SCHEMA, Invariant

#: Medians chosen so every catalog invariant the CLI applies holds: backward
#: beats forward, 4-worker parallel is 4x serial, warm beats cold.
FRONTIER_MEDIANS = {
    "frontier-forward": 1.6,
    "frontier-backward": 0.04,
    "frontier-serial": 2.0,
    "frontier-parallel-4w": 0.5,
    "store-restart-cold": 0.8,
    "store-restart-warm": 0.1,
    "service-throughput-cold": 0.2,
    "service-throughput-warm": 0.05,
}


def make_document(medians=FRONTIER_MEDIANS, *, scale="ci", calibration=0.01, checksums=None):
    return {
        "schema": SCHEMA,
        "suite": "ci",
        "scale": scale,
        "calibration_s": calibration,
        "cpus": 4,
        "scenarios": [
            {
                "id": scenario_id,
                "median_s": median,
                "p95_s": median * 1.1,
                "repetitions": 3,
                "checksum": (checksums or {}).get(scenario_id, f"10:{scenario_id[:8]}"),
            }
            for scenario_id, median in medians.items()
        ],
    }


def write_document(path, document):
    path.write_text(json.dumps(document) + "\n")
    return path


class TestInjectedSlowdown:
    """The ISSUE acceptance check: a 5x slowdown injected into a
    frontier-search scenario makes ``repro bench gate`` exit non-zero and
    name the scenario."""

    def test_gate_cli_fails_and_names_the_scenario(self, tmp_path, capsys):
        baseline = write_document(tmp_path / "trajectory.json", make_document())
        slowed = dict(FRONTIER_MEDIANS)
        slowed["frontier-backward"] *= 5.0
        results = write_document(tmp_path / "results.json", make_document(slowed))
        code = bench_main(["gate", str(results), "--trajectory", str(baseline)])
        captured = capsys.readouterr()
        assert code == 1
        assert "frontier-backward" in captured.err  # "gate: FAILING on: ..."
        assert "regressed" in captured.out
        assert "gate: FAIL" in captured.out

    def test_compare_marks_only_the_slowed_scenario(self):
        slowed = dict(FRONTIER_MEDIANS)
        slowed["frontier-backward"] *= 5.0
        report = compare(make_document(), make_document(slowed))
        assert not report.passed
        assert [verdict.subject for verdict in report.failures] == ["frontier-backward"]
        assert report.failures[0].status == "regressed"

    def test_small_absolute_growth_never_gates(self):
        """A big ratio on a microsecond-scale scenario is noise, not signal."""
        tiny = {"frontier-backward": 0.0002}
        slowed = {"frontier-backward": 0.001}  # 5x, but below MIN_SIGNIFICANT_S
        report = compare(make_document(tiny), make_document(slowed))
        assert report.passed


class TestImprovement:
    def test_improvement_passes_and_is_reported(self, tmp_path, capsys):
        baseline = write_document(tmp_path / "trajectory.json", make_document())
        faster = {key: value / 4.0 for key, value in FRONTIER_MEDIANS.items()}
        results = write_document(tmp_path / "results.json", make_document(faster))
        assert bench_main(["gate", str(results), "--trajectory", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert 'improved' in out
        assert 'gate: PASS' in out

    def test_slower_machine_is_normalized_by_calibration(self):
        """Everything 3x slower with a 3x slower calibration loop = same
        machine speed, not a regression."""
        slower = {key: value * 3.0 for key, value in FRONTIER_MEDIANS.items()}
        report = compare(
            make_document(calibration=0.01),
            make_document(slower, calibration=0.03),
        )
        assert report.passed
        assert all(verdict.status == "ok" for verdict in report.verdicts if "frontier" in verdict.subject)


class TestBootstrap:
    def test_missing_trajectory_bootstraps_and_passes(self, tmp_path, capsys):
        results = write_document(tmp_path / "results.json", make_document())
        trajectory = tmp_path / "store" / "trajectory.json"
        assert bench_main(["gate", str(results), "--trajectory", str(trajectory)]) == 0
        assert "bootstrapped" in capsys.readouterr().out
        assert load_trajectory(trajectory)["schema"] == SCHEMA
        # second run gates against the bootstrapped baseline and passes
        assert bench_main(["gate", str(results), "--trajectory", str(trajectory)]) == 0

    def test_update_refreshes_the_baseline_on_pass(self, tmp_path, capsys):
        trajectory = tmp_path / "trajectory.json"
        write_document(trajectory, make_document())
        faster = {key: value / 4.0 for key, value in FRONTIER_MEDIANS.items()}
        results = write_document(tmp_path / "results.json", make_document(faster))
        assert bench_main(
            ["gate", str(results), "--trajectory", str(trajectory), "--update"]
        ) == 0
        assert "refreshed" in capsys.readouterr().out
        refreshed = load_trajectory(trajectory)
        assert refreshed["scenarios"][0]["median_s"] == pytest.approx(
            FRONTIER_MEDIANS["frontier-forward"] / 4.0
        )


class TestMalformedTrajectory:
    def test_invalid_json_is_a_clean_one_line_error(self, tmp_path, capsys):
        bad = tmp_path / "trajectory.json"
        bad.write_text("{not json")
        results = write_document(tmp_path / "results.json", make_document())
        code = bench_main(["gate", str(results), "--trajectory", str(bad)])
        err = capsys.readouterr().err
        assert code == 2
        assert err.startswith('repro bench: error:')
        assert err.count('\n') == 1

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"schema": "something-else/9", "scenarios": []}))
        with pytest.raises(TrajectoryError, match="schema"):
            load_trajectory(path)

    def test_malformed_scenarios_table_rejected(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"schema": SCHEMA, "scenarios": [{"median_s": 1.0}]}))
        with pytest.raises(TrajectoryError, match="malformed"):
            load_trajectory(path)

    def test_missing_results_file_is_clean(self, tmp_path, capsys):
        code = bench_main(["gate", str(tmp_path / "none.json")])
        err = capsys.readouterr().err
        assert code == 2
        assert err.startswith('repro bench: error:')
        assert err.count('\n') == 1


class TestCompareRules:
    def test_checksum_drift_fails_even_when_fast(self):
        drifted = make_document(checksums={"frontier-forward": "9:deadbeef0000"})
        report = compare(make_document(), drifted)
        assert [verdict.subject for verdict in report.failures] == ["frontier-forward"]
        assert report.failures[0].status == "checksum-drift"

    def test_scale_mismatch_fails_immediately(self):
        report = compare(make_document(scale="ci"), make_document(scale="smoke"))
        assert not report.passed
        assert report.failures[0].subject == "trajectory"

    def test_new_and_not_run_scenarios_do_not_fail(self):
        baseline = make_document({"frontier-forward": 1.6})
        current = make_document({"frontier-backward": 0.04})
        report = compare(baseline, current)
        assert report.passed
        statuses = {verdict.subject: verdict.status for verdict in report.verdicts}
        assert statuses["frontier-backward"] == "new"
        assert statuses["frontier-forward"] == "not-run"

    def test_smoke_scale_skips_invariants(self):
        invariant = Invariant(id="x", fast="frontier-backward", slow="frontier-forward")
        report = compare(
            make_document(scale="smoke"),
            make_document(scale="smoke"),
            invariants=[invariant],
        )
        assert report.passed
        assert report.verdicts[-1].subject == "invariants"
        assert report.verdicts[-1].status == "skipped"

    def test_invariant_failure_names_the_pair(self):
        invariant = Invariant(
            id="backward-beats-forward",
            fast="frontier-forward",  # deliberately inverted: forward is slow
            slow="frontier-backward",
            factor=1.0,
        )
        report = compare(make_document(), make_document(), invariants=[invariant], cpus=8)
        assert [verdict.subject for verdict in report.failures] == ["backward-beats-forward"]
        assert report.failures[0].status == "invariant-failed"

    def test_invariant_skipped_below_min_cpus(self):
        invariant = Invariant(
            id="parallel", fast="frontier-parallel-4w", slow="frontier-serial",
            factor=2.0, min_cpus=4,
        )
        report = compare(make_document(), make_document(), invariants=[invariant], cpus=2)
        assert report.passed
        assert report.verdicts[-1].status == "skipped"

    def test_write_trajectory_roundtrips(self, tmp_path):
        path = tmp_path / "deep" / "trajectory.json"
        write_trajectory(make_document(), path)
        assert load_trajectory(path) == make_document()
