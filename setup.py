"""Setup shim.

The execution environment has no network access and ships setuptools without
the ``wheel`` package, so PEP 517 editable installs (which build a wheel)
fail.  Keeping a classic ``setup.py`` lets ``pip install -e .`` fall back to
the legacy ``setup.py develop`` code path.  All project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
